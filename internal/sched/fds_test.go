package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func TestForceDirectedBalancesIndependentOps(t *testing.T) {
	// Four independent unit-time ops, deadline 4: FDS must spread them
	// over the four steps and end up with a single FU.
	g := dfg.New()
	for _, name := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(name, "")
	}
	tab := fu.UniformTable(4, []int{1}, []int64{1})
	s, cfg, err := ForceDirected(g, tab, make(hap.Assignment, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg[0] != 1 {
		t.Fatalf("cfg = %v, want a single FU", cfg)
	}
	if s.Length > 4 {
		t.Fatalf("length %d > 4", s.Length)
	}
}

func TestForceDirectedDiamondTight(t *testing.T) {
	g, tab := diamond()
	s, cfg, err := ForceDirected(g, tab, allZero(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline 3 forces B and C in parallel.
	if cfg[0] != 2 {
		t.Fatalf("cfg = %v, want 2", cfg)
	}
	if err := ValidateSchedule(g, s, cfg, 3); err != nil {
		t.Fatal(err)
	}
}

func TestForceDirectedDiamondLoose(t *testing.T) {
	g, tab := diamond()
	_, cfg, err := ForceDirected(g, tab, allZero(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg[0] != 1 {
		t.Fatalf("cfg = %v, want 1 (slack allows serializing B and C)", cfg)
	}
}

func TestForceDirectedInfeasible(t *testing.T) {
	g, tab := diamond()
	if _, _, err := ForceDirected(g, tab, allZero(4), 2); !errors.Is(err, hap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestForceDirectedProperties: valid schedules within the deadline, config
// at least the lower bound, on random inputs.
func TestForceDirectedProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			return false
		}
		L := length + rng.Intn(4)
		s, cfg, err := ForceDirected(g, tab, a, L)
		if err != nil {
			return false
		}
		if s.Length > L || ValidateSchedule(g, s, cfg, L) != nil {
			return false
		}
		lb, err := LowerBoundR(g, tab, a, L)
		if err != nil {
			return false
		}
		return cfg.Covers(lb)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestForceDirectedVsMinR compares the two phase-2 algorithms in aggregate:
// neither dominates in theory, but across many random instances their
// total FU counts must stay in the same ballpark (within 25% of each
// other), or one of them has regressed.
func TestForceDirectedVsMinR(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var fdsTotal, minrTotal int
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			t.Fatal(err)
		}
		L := length + rng.Intn(3)
		_, cfgF, err := ForceDirected(g, tab, a, L)
		if err != nil {
			t.Fatal(err)
		}
		_, cfgM, err := MinRSchedule(g, tab, a, L)
		if err != nil {
			t.Fatal(err)
		}
		fdsTotal += cfgF.Total()
		minrTotal += cfgM.Total()
	}
	t.Logf("total FUs: force-directed=%d min_r=%d", fdsTotal, minrTotal)
	if float64(fdsTotal) > 1.25*float64(minrTotal) || float64(minrTotal) > 1.25*float64(fdsTotal) {
		t.Fatalf("phase-2 algorithms diverged: fds=%d minr=%d", fdsTotal, minrTotal)
	}
}

func TestRegisterDemandChain(t *testing.T) {
	// a -> b -> c, unit times, schedule 1,2,3, II = 3: each value lives
	// exactly one step, never overlapping -> 1 register.
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, _, err := MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := RegisterDemand(g, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 1 {
		t.Fatalf("registers = %d, want 1", regs)
	}
}

func TestRegisterDemandFanOut(t *testing.T) {
	// a feeds both b and c; b runs right after a, c two steps later. a's
	// value lives from a's finish to c's start -> overlaps b's input.
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, _, err := MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	// a@1, b@2, c@3: a's value live steps 2..3, b's live step 3: at step 3
	// both are live -> 2 registers.
	regs, err := RegisterDemand(g, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 2 {
		t.Fatalf("registers = %d, want 2", regs)
	}
}

func TestRegisterDemandInterIteration(t *testing.T) {
	// One node whose value is consumed two iterations later: with II = 2
	// and lifetime spanning 2·II steps, two copies of the value are live
	// at once.
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 2)
	s := &Schedule{
		Assign:   make(hap.Assignment, 2),
		Start:    []int{1, 1},
		Times:    []int{1, 1},
		Instance: []int{0, 1},
		Length:   1,
	}
	regs, err := RegisterDemand(g, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Value born at step 2, needed at start(b) + 2*2 = 5: lifetime 4 = 2·II
	// -> 2 registers.
	if regs != 2 {
		t.Fatalf("registers = %d, want 2", regs)
	}
}

func TestRegisterDemandValidation(t *testing.T) {
	g := dfg.Chain(2)
	s := &Schedule{Assign: make(hap.Assignment, 2), Start: []int{1, 2}, Times: []int{1, 1}, Instance: []int{0, 0}, Length: 2}
	if _, err := RegisterDemand(g, s, 0); err == nil {
		t.Error("II 0 accepted")
	}
	bad := &Schedule{Start: []int{1}}
	if _, err := RegisterDemand(g, bad, 1); err == nil {
		t.Error("short schedule accepted")
	}
}

// TestRegisterDemandShrinksWithLargerII: stretching the initiation
// interval (less overlap) never increases steady-state register pressure.
func TestRegisterDemandShrinksWithLargerII(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			return false
		}
		s, _, err := MinRSchedule(g, tab, a, length+2)
		if err != nil {
			return false
		}
		r1, err1 := RegisterDemand(g, s, s.Length)
		r2, err2 := RegisterDemand(g, s, s.Length+3)
		return err1 == nil && err2 == nil && r2 <= r1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
