package sched

import (
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// ListSchedule schedules the DAG portion of g under a FIXED configuration
// (the classic resource-constrained list scheduling the paper's §1 calls
// NP-complete): at each control step, ready nodes are packed into idle FU
// instances in priority order, and nodes that do not fit wait. Priority is
// the longest path from the node to any sink (critical-path priority),
// ties broken by node ID.
//
// Unlike MinRSchedule, the configuration never grows; the schedule length
// is whatever the resources allow. An error is returned when some node's FU
// type has zero instances in cfg.
//
// ListSchedule is the building block of rotation scheduling
// (internal/rotate) and of the configuration-search ablation.
func ListSchedule(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, cfg Config) (*Schedule, error) {
	if len(assign) != g.N() {
		return nil, fmt.Errorf("sched: assignment covers %d nodes, graph has %d", len(assign), g.N())
	}
	if len(cfg) != tab.K() {
		return nil, fmt.Errorf("sched: config covers %d types, table has %d", len(cfg), tab.K())
	}
	times := hap.Times(tab, assign)
	for v := 0; v < g.N(); v++ {
		if cfg[assign[v]] < 1 {
			return nil, fmt.Errorf("sched: node %s needs type %d but config %v has none",
				g.Node(dfg.NodeID(v)).Name, assign[v], cfg)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Critical-path priority: longest execution-time path from v to a sink.
	prio := make([]int, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		prio[v] = times[v]
		for _, c := range g.Succ(v) {
			if p := prio[c] + times[v]; p > prio[v] {
				prio[v] = p
			}
		}
	}

	n := g.N()
	busyUntil := make([][]int, len(cfg))
	for t := range cfg {
		busyUntil[t] = make([]int, cfg[t])
	}
	s := &Schedule{
		Assign:   assign.Clone(),
		Start:    make([]int, n),
		Times:    times,
		Instance: make([]int, n),
	}
	remaining := n
	// A generous horizon: serializing everything on one instance per type.
	horizon := 1
	for v := 0; v < n; v++ {
		horizon += times[v]
	}
	for step := 1; step <= horizon && remaining > 0; step++ {
		var ready []int
		for v := 0; v < n; v++ {
			if s.Start[v] != 0 {
				continue
			}
			ok := true
			for _, u := range g.Pred(dfg.NodeID(v)) {
				if s.Start[u] == 0 || s.Start[u]+times[u]-1 >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, v)
			}
		}
		// Highest priority first.
		for i := 1; i < len(ready); i++ {
			for j := i; j > 0; j-- {
				a, b := ready[j-1], ready[j]
				if prio[a] > prio[b] || (prio[a] == prio[b] && a < b) {
					break
				}
				ready[j-1], ready[j] = b, a
			}
		}
		for _, v := range ready {
			t := assign[v]
			for i, busy := range busyUntil[t] {
				if busy < step {
					busyUntil[t][i] = step + times[v] - 1
					s.Start[v] = step
					s.Instance[v] = i
					if f := step + times[v] - 1; f > s.Length {
						s.Length = f
					}
					remaining--
					break
				}
			}
		}
	}
	if remaining > 0 {
		// Unreachable: the horizon admits full serialization.
		return nil, fmt.Errorf("sched: internal error: %d nodes unscheduled within horizon", remaining)
	}
	if err := ValidateSchedule(g, s, cfg, s.Length); err != nil {
		return nil, fmt.Errorf("sched: internal error: %w", err)
	}
	return s, nil
}

// MinConfigSearch finds a configuration with the smallest total FU count
// whose list schedule meets deadline L, by growing one instance at a time:
// starting from one instance of every used type, it repeatedly adds the
// single instance that shrinks the list-schedule length the most, until the
// deadline holds or adding any instance stops helping. It exists as an
// ablation comparator for MinRSchedule (which interleaves the decision with
// scheduling instead of wrapping the scheduler in a search).
func MinConfigSearch(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, L int) (*Schedule, Config, error) {
	times := hap.Times(tab, assign)
	_, asapLen, err := ASAP(g, times)
	if err != nil {
		return nil, nil, err
	}
	if asapLen > L {
		return nil, nil, fmt.Errorf("%w: critical path %d exceeds deadline %d", hap.ErrInfeasible, asapLen, L)
	}
	// counts[t] instances can never be exceeded usefully: one FU per node
	// of the type realizes the resource-free ASAP schedule.
	counts := make(Config, tab.K())
	for v := 0; v < g.N(); v++ {
		counts[assign[v]]++
	}
	cfg := make(Config, tab.K())
	for t := range cfg {
		if counts[t] > 0 {
			cfg[t] = 1
		}
	}
	s, err := ListSchedule(g, tab, assign, cfg)
	if err != nil {
		return nil, nil, err
	}
	// Add one instance at a time, taking the single addition with the
	// shortest resulting schedule. Progress is not guaranteed per step
	// (sometimes only a pair of additions helps), but the per-type caps
	// bound the loop, and at the caps the schedule equals ASAP <= L.
	for s.Length > L {
		bestT := -1
		var bestS *Schedule
		for t := 0; t < tab.K(); t++ {
			if cfg[t] >= counts[t] {
				continue
			}
			trial := cfg.Clone()
			trial[t]++
			ts, err := ListSchedule(g, tab, assign, trial)
			if err != nil {
				return nil, nil, err
			}
			if bestS == nil || ts.Length < bestS.Length {
				bestT, bestS = t, ts
			}
		}
		if bestT < 0 {
			// All caps reached yet still over L — contradicts asapLen <= L.
			return nil, nil, fmt.Errorf("sched: internal error: config search stuck at length %d > %d", s.Length, L)
		}
		cfg[bestT]++
		s = bestS
	}
	return s, cfg, nil
}
