package sched

import (
	"container/heap"
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// ListSchedule schedules the DAG portion of g under a FIXED configuration
// (the classic resource-constrained list scheduling the paper's §1 calls
// NP-complete): at each control step, ready nodes are packed into idle FU
// instances in priority order, and nodes that do not fit wait. Priority is
// the longest path from the node to any sink (critical-path priority),
// ties broken by node ID.
//
// Unlike MinRSchedule, the configuration never grows; the schedule length
// is whatever the resources allow. An error is returned when some node's FU
// type has zero instances in cfg.
//
// The ready list is indegree-tracked and heap-ordered: a node enters the
// pending heap the moment its last predecessor is placed (keyed by the step
// it becomes ready), and the ready heap yields nodes in exactly the classic
// (priority desc, id asc) order. Control steps where nothing can change —
// no node turns ready and no instance of a wanted type frees up — are
// skipped outright, so the cost is O(E + P log V) in the number of
// placement attempts P instead of the naive O(V·L + R² ) per-step scan and
// insertion sort. Schedules are bit-identical to the scan implementation
// (listScheduleScan, kept as the differential-test oracle).
//
// ListSchedule is the building block of rotation scheduling
// (internal/rotate) and of the configuration-search ablation.
func ListSchedule(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, cfg Config) (*Schedule, error) {
	if len(assign) != g.N() {
		return nil, fmt.Errorf("sched: assignment covers %d nodes, graph has %d", len(assign), g.N())
	}
	if len(cfg) != tab.K() {
		return nil, fmt.Errorf("sched: config covers %d types, table has %d", len(cfg), tab.K())
	}
	times := hap.Times(tab, assign)
	for v := 0; v < g.N(); v++ {
		if cfg[assign[v]] < 1 {
			return nil, fmt.Errorf("sched: node %s needs type %d but config %v has none",
				g.Node(dfg.NodeID(v)).Name, assign[v], cfg)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Critical-path priority: longest execution-time path from v to a sink.
	prio := make([]int, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		prio[v] = times[v]
		for _, c := range g.Succ(v) {
			if p := prio[c] + times[v]; p > prio[v] {
				prio[v] = p
			}
		}
	}

	n := g.N()
	busyUntil := make([][]int, len(cfg))
	for t := range cfg {
		busyUntil[t] = make([]int, cfg[t])
	}
	s := &Schedule{
		Assign:   assign.Clone(),
		Start:    make([]int, n),
		Times:    times,
		Instance: make([]int, n),
	}
	// A generous horizon: serializing everything on one instance per type.
	horizon := 1
	for v := 0; v < n; v++ {
		horizon += times[v]
	}

	// Readiness tracking: indeg counts unplaced predecessors, readyAt
	// accumulates max(pred finish)+1 as predecessors are placed. A node joins
	// pending the moment its indegree hits zero — by then its ready step is
	// final — and moves to the ready heap when the clock reaches it.
	indeg := make([]int, n)
	readyAt := make([]int, n)
	pending := &stepHeap{readyAt: readyAt}
	ready := &prioHeap{prio: prio}
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Pred(dfg.NodeID(v)))
		readyAt[v] = 1
		if indeg[v] == 0 {
			pending.ids = append(pending.ids, v)
		}
	}
	heap.Init(pending)

	remaining := n
	unplaced := make([]int, 0, n)
	wantType := make([]bool, len(cfg))
	for step := 1; step <= horizon && remaining > 0; {
		for pending.Len() > 0 && readyAt[pending.ids[0]] <= step {
			heap.Push(ready, heap.Pop(pending).(int))
		}
		// Highest priority first; nodes that do not fit wait for a free
		// instance of their type. The heap yields exactly the (prio desc,
		// id asc) order of the classic sorted ready list.
		unplaced = unplaced[:0]
		for ready.Len() > 0 {
			v := heap.Pop(ready).(int)
			t := assign[v]
			placed := false
			for i, busy := range busyUntil[t] {
				if busy < step {
					finish := step + times[v] - 1
					busyUntil[t][i] = finish
					s.Start[v] = step
					s.Instance[v] = i
					if finish > s.Length {
						s.Length = finish
					}
					remaining--
					placed = true
					for _, c := range g.Succ(dfg.NodeID(v)) {
						if finish+1 > readyAt[c] {
							readyAt[c] = finish + 1
						}
						indeg[c]--
						if indeg[c] == 0 {
							heap.Push(pending, int(c))
						}
					}
					break
				}
			}
			if !placed {
				unplaced = append(unplaced, v)
			}
		}
		for _, v := range unplaced {
			heap.Push(ready, v)
		}

		// Event-driven clock: jump to the next step where something can
		// change — a pending node turns ready, or an instance of a type some
		// waiting node needs frees up. (All instances of such a type are busy
		// through this step, so every candidate is strictly in the future.)
		next := horizon + 1
		if pending.Len() > 0 && readyAt[pending.ids[0]] < next {
			next = readyAt[pending.ids[0]]
		}
		if len(unplaced) > 0 {
			for t := range wantType {
				wantType[t] = false
			}
			for _, v := range unplaced {
				wantType[assign[v]] = true
			}
			for t, want := range wantType {
				if !want {
					continue
				}
				for _, busy := range busyUntil[t] {
					if busy+1 < next {
						next = busy + 1
					}
				}
			}
		}
		step = next
	}
	if remaining > 0 {
		// Unreachable: the horizon admits full serialization.
		return nil, fmt.Errorf("sched: internal error: %d nodes unscheduled within horizon", remaining)
	}
	if err := ValidateSchedule(g, s, cfg, s.Length); err != nil {
		return nil, fmt.Errorf("sched: internal error: %w", err)
	}
	return s, nil
}

// prioHeap orders ready nodes by (priority desc, id asc) — the exact total
// order of the classic sorted ready list, so heap pops reproduce it.
type prioHeap struct {
	ids  []int
	prio []int
}

func (h *prioHeap) Len() int { return len(h.ids) }
func (h *prioHeap) Less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	return h.prio[a] > h.prio[b] || (h.prio[a] == h.prio[b] && a < b)
}
func (h *prioHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *prioHeap) Push(x any)    { h.ids = append(h.ids, x.(int)) }
func (h *prioHeap) Pop() any {
	v := h.ids[len(h.ids)-1]
	h.ids = h.ids[:len(h.ids)-1]
	return v
}

// stepHeap orders pending nodes by the step they become ready (ties by id,
// for determinism; tied nodes enter the ready heap together anyway).
type stepHeap struct {
	ids     []int
	readyAt []int
}

func (h *stepHeap) Len() int { return len(h.ids) }
func (h *stepHeap) Less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	return h.readyAt[a] < h.readyAt[b] || (h.readyAt[a] == h.readyAt[b] && a < b)
}
func (h *stepHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *stepHeap) Push(x any)    { h.ids = append(h.ids, x.(int)) }
func (h *stepHeap) Pop() any {
	v := h.ids[len(h.ids)-1]
	h.ids = h.ids[:len(h.ids)-1]
	return v
}

// listScheduleScan is the original O(V) per-step implementation: scan all
// nodes for readiness each control step, insertion-sort the ready list, pack
// greedily. It is retained verbatim as the differential oracle ListSchedule
// is tested against — the two must produce bit-identical schedules.
func listScheduleScan(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, cfg Config) (*Schedule, error) {
	if len(assign) != g.N() {
		return nil, fmt.Errorf("sched: assignment covers %d nodes, graph has %d", len(assign), g.N())
	}
	if len(cfg) != tab.K() {
		return nil, fmt.Errorf("sched: config covers %d types, table has %d", len(cfg), tab.K())
	}
	times := hap.Times(tab, assign)
	for v := 0; v < g.N(); v++ {
		if cfg[assign[v]] < 1 {
			return nil, fmt.Errorf("sched: node %s needs type %d but config %v has none",
				g.Node(dfg.NodeID(v)).Name, assign[v], cfg)
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	prio := make([]int, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		prio[v] = times[v]
		for _, c := range g.Succ(v) {
			if p := prio[c] + times[v]; p > prio[v] {
				prio[v] = p
			}
		}
	}

	n := g.N()
	busyUntil := make([][]int, len(cfg))
	for t := range cfg {
		busyUntil[t] = make([]int, cfg[t])
	}
	s := &Schedule{
		Assign:   assign.Clone(),
		Start:    make([]int, n),
		Times:    times,
		Instance: make([]int, n),
	}
	remaining := n
	horizon := 1
	for v := 0; v < n; v++ {
		horizon += times[v]
	}
	for step := 1; step <= horizon && remaining > 0; step++ {
		var ready []int
		for v := 0; v < n; v++ {
			if s.Start[v] != 0 {
				continue
			}
			ok := true
			for _, u := range g.Pred(dfg.NodeID(v)) {
				if s.Start[u] == 0 || s.Start[u]+times[u]-1 >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, v)
			}
		}
		for i := 1; i < len(ready); i++ {
			for j := i; j > 0; j-- {
				a, b := ready[j-1], ready[j]
				if prio[a] > prio[b] || (prio[a] == prio[b] && a < b) {
					break
				}
				ready[j-1], ready[j] = b, a
			}
		}
		for _, v := range ready {
			t := assign[v]
			for i, busy := range busyUntil[t] {
				if busy < step {
					busyUntil[t][i] = step + times[v] - 1
					s.Start[v] = step
					s.Instance[v] = i
					if f := step + times[v] - 1; f > s.Length {
						s.Length = f
					}
					remaining--
					break
				}
			}
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("sched: internal error: %d nodes unscheduled within horizon", remaining)
	}
	if err := ValidateSchedule(g, s, cfg, s.Length); err != nil {
		return nil, fmt.Errorf("sched: internal error: %w", err)
	}
	return s, nil
}

// MinConfigSearch finds a configuration with the smallest total FU count
// whose list schedule meets deadline L, by growing one instance at a time:
// starting from one instance of every used type, it repeatedly adds the
// single instance that shrinks the list-schedule length the most, until the
// deadline holds or adding any instance stops helping. It exists as an
// ablation comparator for MinRSchedule (which interleaves the decision with
// scheduling instead of wrapping the scheduler in a search).
func MinConfigSearch(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, L int) (*Schedule, Config, error) {
	times := hap.Times(tab, assign)
	_, asapLen, err := ASAP(g, times)
	if err != nil {
		return nil, nil, err
	}
	if asapLen > L {
		return nil, nil, fmt.Errorf("%w: critical path %d exceeds deadline %d", hap.ErrInfeasible, asapLen, L)
	}
	// counts[t] instances can never be exceeded usefully: one FU per node
	// of the type realizes the resource-free ASAP schedule.
	counts := make(Config, tab.K())
	for v := 0; v < g.N(); v++ {
		counts[assign[v]]++
	}
	cfg := make(Config, tab.K())
	for t := range cfg {
		if counts[t] > 0 {
			cfg[t] = 1
		}
	}
	s, err := ListSchedule(g, tab, assign, cfg)
	if err != nil {
		return nil, nil, err
	}
	// Add one instance at a time, taking the single addition with the
	// shortest resulting schedule. Progress is not guaranteed per step
	// (sometimes only a pair of additions helps), but the per-type caps
	// bound the loop, and at the caps the schedule equals ASAP <= L.
	for s.Length > L {
		bestT := -1
		var bestS *Schedule
		for t := 0; t < tab.K(); t++ {
			if cfg[t] >= counts[t] {
				continue
			}
			trial := cfg.Clone()
			trial[t]++
			ts, err := ListSchedule(g, tab, assign, trial)
			if err != nil {
				return nil, nil, err
			}
			if bestS == nil || ts.Length < bestS.Length {
				bestT, bestS = t, ts
			}
		}
		if bestT < 0 {
			// All caps reached yet still over L — contradicts asapLen <= L.
			return nil, nil, fmt.Errorf("sched: internal error: config search stuck at length %d > %d", s.Length, L)
		}
		cfg[bestT]++
		s = bestS
	}
	return s, cfg, nil
}
