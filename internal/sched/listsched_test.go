package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func TestListScheduleSerializesOnOneFU(t *testing.T) {
	g, tab := diamond()
	a := allZero(4)
	s, err := ListSchedule(g, tab, a, Config{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// One unit-time FU: A, then B and C serialized, then D -> length 4.
	if s.Length != 4 {
		t.Fatalf("length = %d, want 4", s.Length)
	}
	if err := ValidateSchedule(g, s, Config{1, 0}, s.Length); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleParallelizesWithTwoFUs(t *testing.T) {
	g, tab := diamond()
	a := allZero(4)
	s, err := ListSchedule(g, tab, a, Config{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Length != 3 {
		t.Fatalf("length = %d, want 3", s.Length)
	}
}

func TestListScheduleRejectsMissingType(t *testing.T) {
	g, tab := diamond()
	a := hap.Assignment{0, 1, 1, 0}
	if _, err := ListSchedule(g, tab, a, Config{2, 0}); err == nil {
		t.Fatal("config without the needed type accepted")
	}
	if _, err := ListSchedule(g, tab, a, Config{2}); err == nil {
		t.Fatal("short config accepted")
	}
	if _, err := ListSchedule(g, tab, hap.Assignment{0}, Config{2, 0}); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestListScheduleCriticalPathPriority(t *testing.T) {
	// Two ready nodes, one FU: the one heading the longer chain must go
	// first. Graph: a->b->c (chain) and x (isolated), all unit-time.
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddNode("x", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	tab := fu.UniformTable(4, []int{1}, []int64{1})
	s, err := ListSchedule(g, tab, make(hap.Assignment, 4), Config{1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 1 {
		t.Fatalf("chain head scheduled at %d, want 1 (priority)", s.Start[0])
	}
	if s.Length != 4 {
		t.Fatalf("length = %d, want 4", s.Length)
	}
}

func TestListScheduleMatchesUnboundedASAPWithAmpleResources(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		cfg := Config{n, n} // one FU per node: no contention
		s, err := ListSchedule(g, tab, a, cfg)
		if err != nil {
			return false
		}
		_, asapLen, err := ASAP(g, hap.Times(tab, a))
		if err != nil {
			return false
		}
		return s.Length == asapLen
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleMonotoneInResources(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.25)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		s1, err := ListSchedule(g, tab, a, Config{1, 1})
		if err != nil {
			return false
		}
		s2, err := ListSchedule(g, tab, a, Config{n, n})
		if err != nil {
			return false
		}
		return s2.Length <= s1.Length
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinConfigSearchMeetsDeadline(t *testing.T) {
	g, tab := diamond()
	a := allZero(4)
	s, cfg, err := MinConfigSearch(g, tab, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length > 3 {
		t.Fatalf("length %d > 3", s.Length)
	}
	if cfg[0] != 2 {
		t.Fatalf("cfg = %v, want 2 of type 0", cfg)
	}
	// Loose deadline: one FU suffices.
	s, cfg, err = MinConfigSearch(g, tab, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg[0] != 1 || s.Length > 4 {
		t.Fatalf("cfg = %v length %d, want 1 FU within 4", cfg, s.Length)
	}
}

func TestMinConfigSearchInfeasible(t *testing.T) {
	g, tab := diamond()
	a := allZero(4) // critical path 3
	if _, _, err := MinConfigSearch(g, tab, a, 2); !errors.Is(err, hap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestMinRScheduleVsConfigSearch cross-validates the paper's phase-2
// algorithm against the search-based comparator: both must meet the
// deadline, and Min_R must never need more total FUs than the search plus
// slack 1 (they explore different packings, so exact equality is not
// guaranteed; a large systematic excess would flag a regression).
func TestMinRScheduleVsConfigSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	worse := 0
	trials := 0
	for trials < 60 {
		n := 3 + rng.Intn(10)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			t.Fatal(err)
		}
		L := length + rng.Intn(3)
		_, cfgMinR, err := MinRSchedule(g, tab, a, L)
		if err != nil {
			t.Fatal(err)
		}
		_, cfgSearch, err := MinConfigSearch(g, tab, a, L)
		if err != nil {
			t.Fatal(err)
		}
		if cfgMinR.Total() > cfgSearch.Total() {
			worse++
		}
		trials++
	}
	if worse > trials/4 {
		t.Fatalf("Min_R needed more FUs than config search in %d/%d trials", worse, trials)
	}
}

// TestListScheduleDifferentialVsScan proves the heap-based ListSchedule is
// bit-identical to the original per-step scan implementation — same starts,
// same instance bindings, same length — across random DFGs, assignments and
// configurations (including scarce ones that force long waits).
func TestListScheduleDifferentialVsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(16)
		var g *dfg.Graph
		if trial%3 == 0 {
			g = dfg.RandomTree(rng, n)
		} else {
			g = dfg.RandomDAG(rng, n, 0.15+rng.Float64()*0.35)
		}
		k := 2 + rng.Intn(2)
		tab := fu.RandomTable(rng, n, k)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(k))
		}
		cfg := make(Config, k)
		for tt := range cfg {
			cfg[tt] = 1 + rng.Intn(3) // scarce: waits and ties are exercised
		}
		got, err := ListSchedule(g, tab, a, cfg)
		want, errScan := listScheduleScan(g, tab, a, cfg)
		if (err == nil) != (errScan == nil) {
			t.Fatalf("trial %d: heap err %v, scan err %v", trial, err, errScan)
		}
		if err != nil {
			continue
		}
		if got.Length != want.Length {
			t.Fatalf("trial %d: heap length %d, scan length %d", trial, got.Length, want.Length)
		}
		for v := 0; v < n; v++ {
			if got.Start[v] != want.Start[v] || got.Instance[v] != want.Instance[v] {
				t.Fatalf("trial %d node %d: heap (start %d, inst %d), scan (start %d, inst %d)",
					trial, v, got.Start[v], got.Instance[v], want.Start[v], want.Instance[v])
			}
		}
	}
}
