package sched

import (
	"hetsynth/internal/dfg"
)

// MuxDemand estimates the interconnect complexity of a bound schedule: for
// every FU instance it counts how many distinct sources (other FU
// instances or external inputs) feed it across all the operations it
// executes — the width of the input multiplexer the datapath would need.
// The returned slice is indexed like the configuration (per type, per
// instance), flattened type-major; the int result is the widest mux.
//
// Interconnect cost is the classic hidden price of aggressive FU sharing:
// Min_R_Scheduling and force-directed scheduling can produce equal FU
// counts with very different mux widths, which the phase-2 ablation
// surfaces.
func MuxDemand(g *dfg.Graph, s *Schedule, cfg Config) (perInstance []int, widest int) {
	offset := make([]int, len(cfg))
	total := 0
	for t := range cfg {
		offset[t] = total
		total += cfg[t]
	}
	sources := make([]map[int]bool, total)
	for i := range sources {
		sources[i] = make(map[int]bool)
	}
	const external = -1
	for v := 0; v < g.N(); v++ {
		sink := offset[s.Assign[v]] + s.Instance[v]
		preds := g.PredAll(dfg.NodeID(v))
		if len(preds) == 0 {
			sources[sink][external] = true
			continue
		}
		for _, u := range preds {
			src := offset[s.Assign[u]] + s.Instance[u]
			sources[sink][src] = true
		}
	}
	perInstance = make([]int, total)
	for i, set := range sources {
		perInstance[i] = len(set)
		if len(set) > widest {
			widest = len(set)
		}
	}
	return perInstance, widest
}
