package sched

import (
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func TestMuxDemandSharedFU(t *testing.T) {
	// Chain a -> b -> c on one FU: the instance feeds itself (b and c read
	// the previous op's result from the same instance) plus the external
	// input of a: 2 distinct sources.
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, cfg, err := MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	per, widest := MuxDemand(g, s, cfg)
	if len(per) != cfg.Total() {
		t.Fatalf("per-instance slice covers %d, config has %d", len(per), cfg.Total())
	}
	if widest != 2 {
		t.Fatalf("widest mux = %d, want 2 (self + external)", widest)
	}
}

func TestMuxDemandSeparateFUs(t *testing.T) {
	// Diamond on ample resources at the tight deadline: B and C run on
	// separate instances; D reads from both -> mux width 2 at D's unit.
	g, tab := diamond()
	s, cfg, err := MinRSchedule(g, tab, allZero(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	_, widest := MuxDemand(g, s, cfg)
	if widest < 2 {
		t.Fatalf("widest mux = %d, want >= 2", widest)
	}
}

func TestMuxDemandCountsExternalOnce(t *testing.T) {
	// Two independent input ops on one FU: the instance sees only the
	// external source, width 1.
	g := dfg.New()
	g.MustAddNode("a", "")
	g.MustAddNode("b", "")
	tab := fu.UniformTable(2, []int{1}, []int64{1})
	s, cfg, err := MinRSchedule(g, tab, make(hap.Assignment, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	per, widest := MuxDemand(g, s, cfg)
	if widest != 1 || per[0] != 1 {
		t.Fatalf("mux = %v widest %d, want all 1", per, widest)
	}
}
