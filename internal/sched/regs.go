package sched

import (
	"fmt"

	"hetsynth/internal/dfg"
)

// RegisterDemand computes how many registers the datapath needs to hold
// intermediate values when the schedule is repeated with initiation
// interval ii — the register-minimization metric of Ito and Parhi
// ("Register minimization in cost-optimal synthesis of DSP architectures",
// reference [12] of the paper).
//
// Every node with at least one consumer produces one value per iteration.
// The value born when its producer finishes stays live until the last
// consumer has started; a consumer d iterations later (an edge with d
// delays) extends the lifetime by d·ii steps. Lifetimes longer than ii
// overlap with the same value from later iterations, so a value of length
// len occupies ⌈len/ii⌉ registers in steady state plus its fractional
// phase; the demand is the maximum, over the ii phases of the steady-state
// pattern, of the number of live values.
func RegisterDemand(g *dfg.Graph, s *Schedule, ii int) (int, error) {
	if ii < 1 {
		return 0, fmt.Errorf("sched: initiation interval %d < 1", ii)
	}
	n := g.N()
	if len(s.Start) != n || len(s.Times) != n {
		return 0, fmt.Errorf("sched: schedule does not cover the graph")
	}
	// live[phase] counts values alive during phase p in steady state.
	live := make([]int, ii)
	for v := 0; v < n; v++ {
		vid := dfg.NodeID(v)
		birth := s.Finish(vid) + 1 // first step the value is available
		death := -1                // last step some consumer still needs it
		for _, e := range g.Edges() {
			if e.From != vid {
				continue
			}
			// The consumer of iteration i+d starts at Start(to) + d·ii
			// relative to this iteration's origin; the value must persist
			// up to (and excluding) that start — the consumer reads it as
			// it begins.
			need := s.Start[e.To] + e.Delays*ii
			if need > death {
				death = need
			}
		}
		if death < birth {
			continue // no consumer (a primary output held elsewhere)
		}
		// The value is live during steps [birth, death]; fold onto phases.
		length := death - birth + 1
		if length >= ii {
			full := length / ii
			for p := 0; p < ii; p++ {
				live[p] += full
			}
			length -= full * ii
		}
		for off := 0; off < length; off++ {
			live[(birth+off)%ii]++
		}
	}
	max := 0
	for _, c := range live {
		if c > max {
			max = c
		}
	}
	return max, nil
}
