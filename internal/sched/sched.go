// Package sched implements the second phase of the paper: minimum-resource
// scheduling and configuration (§6).
//
// Given a DFG whose nodes already carry an FU-type assignment (phase one,
// package hap), the scheduler produces a static schedule that meets the
// timing constraint and a configuration — how many FU instances of each type
// the architecture needs — that is as small as the revised list scheduling
// can make it:
//
//   - Lower_Bound_R derives a per-type lower bound from the occupancy of the
//     ASAP and ALAP schedules (maximum of window averages);
//   - Min_R_Scheduling starts from that bound and walks the control steps,
//     adding an FU instance only when a node reaches its ALAP deadline with
//     no instance free, and otherwise packing ready nodes into idle
//     instances without growing the configuration.
//
// Control steps are 1-based, matching the paper's figures. A node with
// execution time t scheduled at step s occupies its FU instance during
// steps s .. s+t−1.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// Config counts the FU instances of each type in a synthesized
// architecture; index by fu.TypeID.
type Config []int

// Total is the overall number of FU instances.
func (c Config) Total() int {
	n := 0
	for _, x := range c {
		n += x
	}
	return n
}

// String renders the configuration the way the paper's tables do: counts
// joined by dashes, e.g. "2-1-3" for two P1s, one P2 and three P3s.
func (c Config) String() string {
	parts := make([]string, len(c))
	for i, x := range c {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, "-")
}

// Clone returns a copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Covers reports whether c has at least as many instances of every type
// as other.
func (c Config) Covers(other Config) bool {
	if len(c) != len(other) {
		return false
	}
	for i := range c {
		if c[i] < other[i] {
			return false
		}
	}
	return true
}

// Schedule is a static schedule of one iteration of the DFG.
type Schedule struct {
	Assign   hap.Assignment // FU type per node
	Start    []int          // control step each node starts at (1-based)
	Times    []int          // execution time per node under Assign
	Instance []int          // FU instance (within its type) each node runs on
	Length   int            // last occupied control step
}

// Finish returns the last control step node v occupies.
func (s *Schedule) Finish(v dfg.NodeID) int {
	return s.Start[v] + s.Times[v] - 1
}

// ASAP computes the as-soon-as-possible start steps for the DAG portion of
// g when node v takes times[v] steps, plus the resulting schedule length.
func ASAP(g *dfg.Graph, times []int) (start []int, length int, err error) {
	if err := checkTimes(g, times); err != nil {
		return nil, 0, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	start = make([]int, g.N())
	for _, v := range order {
		s := 1
		for _, u := range g.Pred(v) {
			if f := start[u] + times[u]; f > s {
				s = f
			}
		}
		start[v] = s
		if f := s + times[v] - 1; f > length {
			length = f
		}
	}
	return start, length, nil
}

// ALAP computes the as-late-as-possible start steps under deadline L. It
// fails with hap.ErrInfeasible when even ASAP cannot meet L.
func ALAP(g *dfg.Graph, times []int, L int) (start []int, err error) {
	if err := checkTimes(g, times); err != nil {
		return nil, err
	}
	order, err := g.ReverseTopoOrder()
	if err != nil {
		return nil, err
	}
	start = make([]int, g.N())
	for _, v := range order {
		s := L - times[v] + 1
		for _, u := range g.Succ(v) {
			if cap := start[u] - times[v]; cap < s {
				s = cap
			}
		}
		if s < 1 {
			return nil, fmt.Errorf("%w: node %s cannot finish by step %d", hap.ErrInfeasible, g.Node(v).Name, L)
		}
		start[v] = s
	}
	return start, nil
}

func checkTimes(g *dfg.Graph, times []int) error {
	if len(times) != g.N() {
		return fmt.Errorf("sched: %d times for %d nodes", len(times), g.N())
	}
	for v, t := range times {
		if t < 1 {
			return fmt.Errorf("sched: node %d has execution time %d (< 1)", v, t)
		}
	}
	return nil
}

// occupancy builds, for each FU type, the number of type-k nodes executing
// in each control step 1..L of the given start-step vector.
func occupancy(g *dfg.Graph, times []int, assign hap.Assignment, start []int, k, L int) [][]int {
	occ := make([][]int, k)
	for i := range occ {
		occ[i] = make([]int, L+1) // index 1..L
	}
	for v := 0; v < g.N(); v++ {
		t := assign[v]
		for s := start[v]; s < start[v]+times[v] && s <= L; s++ {
			occ[t][s]++
		}
	}
	return occ
}

// LowerBoundR implements Algorithm Lower_Bound_R (§6, Figure 13): a lower
// bound on the number of FU instances of each type needed by any schedule
// meeting deadline L.
//
// In every feasible schedule a node starts no earlier than its ASAP step and
// no later than its ALAP step. Hence the ASAP occupancy cells of type k at
// steps >= j are work forced into the window [j, L] (delaying a node only
// pushes more of it past j), giving the bound ceil(sum/(L−j+1)); dually the
// ALAP occupancy cells at steps <= j are forced into [1, j]. The bound per
// type is the maximum over both schedules and all windows — the paper's
// "maximum value selected from the average resource needed in each time
// period" — and at least 1 for any type that is used at all.
func LowerBoundR(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, L int) (Config, error) {
	times := hap.Times(tab, assign)
	asap, length, err := ASAP(g, times)
	if err != nil {
		return nil, err
	}
	if length > L {
		return nil, fmt.Errorf("%w: ASAP length %d exceeds deadline %d", hap.ErrInfeasible, length, L)
	}
	alap, err := ALAP(g, times, L)
	if err != nil {
		return nil, err
	}
	k := tab.K()
	asapOcc := occupancy(g, times, assign, asap, k, L)
	alapOcc := occupancy(g, times, assign, alap, k, L)

	lb := make(Config, k)
	for t := 0; t < k; t++ {
		// Suffix windows of the ASAP occupancy.
		suffix := 0
		for j := L; j >= 1; j-- {
			suffix += asapOcc[t][j]
			if b := ceilDiv(suffix, L-j+1); b > lb[t] {
				lb[t] = b
			}
		}
		// Prefix windows of the ALAP occupancy.
		prefix := 0
		for j := 1; j <= L; j++ {
			prefix += alapOcc[t][j]
			if b := ceilDiv(prefix, j); b > lb[t] {
				lb[t] = b
			}
		}
	}
	return lb, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// MinRSchedule implements Algorithm Min_R_Scheduling (§6, Figure 14): a
// revised list scheduling that starts from the Lower_Bound_R configuration
// and walks control steps 1..L. At each step, every ready node whose ALAP
// step equals the current step is scheduled immediately — growing the
// configuration when no instance of its type is idle — and the remaining
// ready nodes are packed into idle instances (most urgent first) without
// adding resource.
//
// The returned schedule always meets the deadline: a node is force-started
// no later than its ALAP step, and by induction its predecessors have
// finished by then.
func MinRSchedule(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, L int) (*Schedule, Config, error) {
	cfg, err := LowerBoundR(g, tab, assign, L)
	if err != nil {
		return nil, nil, err
	}
	times := hap.Times(tab, assign)
	alap, err := ALAP(g, times, L)
	if err != nil {
		return nil, nil, err
	}

	n := g.N()
	k := tab.K()
	// busyUntil[t][i]: last step instance i of type t is occupied.
	busyUntil := make([][]int, k)
	for t := 0; t < k; t++ {
		busyUntil[t] = make([]int, cfg[t])
	}
	sched := &Schedule{
		Assign:   assign.Clone(),
		Start:    make([]int, n),
		Times:    times,
		Instance: make([]int, n),
	}
	for v := range sched.Start {
		sched.Start[v] = 0 // unscheduled
	}
	remainingPreds := make([]int, n)
	for v := 0; v < n; v++ {
		remainingPreds[v] = g.InDegree(dfg.NodeID(v))
	}
	scheduled := 0

	freeInstance := func(t fu.TypeID, step int) int {
		for i, busy := range busyUntil[t] {
			if busy < step {
				return i
			}
		}
		return -1
	}
	place := func(v int, step int, grow bool) bool {
		t := assign[v]
		i := freeInstance(t, step)
		if i < 0 {
			if !grow {
				return false
			}
			busyUntil[t] = append(busyUntil[t], 0)
			cfg[t]++
			i = len(busyUntil[t]) - 1
		}
		busyUntil[t][i] = step + times[v] - 1
		sched.Start[v] = step
		sched.Instance[v] = i
		if f := step + times[v] - 1; f > sched.Length {
			sched.Length = f
		}
		scheduled++
		for _, c := range g.Succ(dfg.NodeID(v)) {
			remainingPreds[c]--
		}
		return true
	}

	for step := 1; step <= L && scheduled < n; step++ {
		// Ready: unscheduled, and all predecessors finished before step.
		var ready []int
		for v := 0; v < n; v++ {
			if sched.Start[v] != 0 || remainingPreds[v] > 0 {
				continue
			}
			ok := true
			for _, u := range g.Pred(dfg.NodeID(v)) {
				if sched.Start[u]+times[u]-1 >= step {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, v)
			}
		}
		sort.Slice(ready, func(i, j int) bool {
			if alap[ready[i]] != alap[ready[j]] {
				return alap[ready[i]] < alap[ready[j]]
			}
			return ready[i] < ready[j]
		})
		for _, v := range ready {
			if alap[v] == step {
				place(v, step, true) // deadline: add resource if needed
			}
		}
		for _, v := range ready {
			if sched.Start[v] == 0 && alap[v] > step {
				place(v, step, false) // opportunistic: no new resource
			}
		}
	}
	if scheduled < n {
		// Unreachable when ALAP succeeded; kept as a safety net.
		return nil, nil, errors.New("sched: internal error: nodes left unscheduled")
	}
	if err := ValidateSchedule(g, sched, cfg, L); err != nil {
		return nil, nil, fmt.Errorf("sched: internal error: %w", err)
	}
	return sched, cfg, nil
}

// ValidateSchedule checks that a schedule is well-formed: every node starts
// at step >= 1 and finishes by L, precedences hold (a node starts strictly
// after all its DAG-portion predecessors finish), and at no control step
// does any FU type run more nodes than the configuration provides.
func ValidateSchedule(g *dfg.Graph, s *Schedule, cfg Config, L int) error {
	n := g.N()
	if len(s.Start) != n || len(s.Times) != n || len(s.Assign) != n {
		return errors.New("sched: schedule arrays do not cover the graph")
	}
	for v := 0; v < n; v++ {
		if s.Start[v] < 1 {
			return fmt.Errorf("sched: node %s unscheduled", g.Node(dfg.NodeID(v)).Name)
		}
		if s.Finish(dfg.NodeID(v)) > L {
			return fmt.Errorf("sched: node %s finishes at %d > %d", g.Node(dfg.NodeID(v)).Name, s.Finish(dfg.NodeID(v)), L)
		}
		for _, u := range g.Pred(dfg.NodeID(v)) {
			if s.Start[v] <= s.Finish(u) {
				return fmt.Errorf("sched: %s starts at %d before %s finishes at %d",
					g.Node(dfg.NodeID(v)).Name, s.Start[v], g.Node(u).Name, s.Finish(u))
			}
		}
	}
	occ := occupancy(g, s.Times, s.Assign, s.Start, len(cfg), L)
	for t := range cfg {
		for step := 1; step <= L; step++ {
			if occ[t][step] > cfg[t] {
				return fmt.Errorf("sched: step %d uses %d instances of type %d, config has %d",
					step, occ[t][step], t, cfg[t])
			}
		}
	}
	return nil
}

// Gantt renders the schedule as a per-instance text chart, one row per FU
// instance, matching the layout of Figure 3 in the paper. Columns are
// control steps 1..Length; a node's name fills its occupied steps.
func Gantt(g *dfg.Graph, lib *fu.Library, s *Schedule, cfg Config) string {
	width := 1
	for v := 0; v < g.N(); v++ {
		if l := len(g.Node(dfg.NodeID(v)).Name); l > width {
			width = l
		}
	}
	cell := func(txt string) string {
		for len(txt) < width {
			txt += " "
		}
		return txt
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "step")
	for step := 1; step <= s.Length; step++ {
		fmt.Fprintf(&b, "|%s", cell(fmt.Sprintf("%d", step)))
	}
	b.WriteString("|\n")
	for t := range cfg {
		for i := 0; i < cfg[t]; i++ {
			fmt.Fprintf(&b, "%-8s", fmt.Sprintf("%s[%d]", lib.Name(fu.TypeID(t)), i))
			for step := 1; step <= s.Length; step++ {
				txt := ""
				for v := 0; v < g.N(); v++ {
					if s.Assign[v] == fu.TypeID(t) && s.Instance[v] == i &&
						s.Start[v] <= step && step <= s.Finish(dfg.NodeID(v)) {
						txt = g.Node(dfg.NodeID(v)).Name
						break
					}
				}
				fmt.Fprintf(&b, "|%s", cell(txt))
			}
			b.WriteString("|\n")
		}
	}
	return b.String()
}
