package sched

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// diamond builds A -> {B, C} -> D with unit times under type 0 and a
// two-type table; assignments in tests pick concrete durations.
func diamond() (*dfg.Graph, *fu.Table) {
	g := dfg.New()
	a := g.MustAddNode("A", "")
	b := g.MustAddNode("B", "")
	c := g.MustAddNode("C", "")
	d := g.MustAddNode("D", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0)
	t := fu.NewTable(4, 2)
	for v := 0; v < 4; v++ {
		t.MustSet(v, []int{1, 2}, []int64{4, 1})
	}
	return g, t
}

func allZero(n int) hap.Assignment {
	return make(hap.Assignment, n)
}

func TestASAPOnDiamond(t *testing.T) {
	g, tab := diamond()
	start, length, err := ASAP(g, hap.Times(tab, allZero(4)))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 2, 3}
	for v := range want {
		if start[v] != want[v] {
			t.Fatalf("ASAP start = %v, want %v", start, want)
		}
	}
	if length != 3 {
		t.Fatalf("length = %d, want 3", length)
	}
}

func TestASAPMultiCycle(t *testing.T) {
	g, tab := diamond()
	a := hap.Assignment{1, 0, 1, 0} // A and C take 2 steps
	start, length, err := ASAP(g, hap.Times(tab, a))
	if err != nil {
		t.Fatal(err)
	}
	// A: 1-2, B: 3, C: 3-4, D: 5.
	want := []int{1, 3, 3, 5}
	for v := range want {
		if start[v] != want[v] {
			t.Fatalf("start = %v, want %v", start, want)
		}
	}
	if length != 5 {
		t.Fatalf("length = %d, want 5", length)
	}
}

func TestALAPOnDiamond(t *testing.T) {
	g, tab := diamond()
	times := hap.Times(tab, allZero(4))
	start, err := ALAP(g, times, 5)
	if err != nil {
		t.Fatal(err)
	}
	// D must finish by 5 -> starts 5; B, C by 4; A by 3.
	want := []int{3, 4, 4, 5}
	for v := range want {
		if start[v] != want[v] {
			t.Fatalf("ALAP start = %v, want %v", start, want)
		}
	}
	if _, err := ALAP(g, times, 2); !errors.Is(err, hap.ErrInfeasible) {
		t.Fatalf("deadline 2 should be infeasible, got %v", err)
	}
}

func TestASAPALAPInputValidation(t *testing.T) {
	g, _ := diamond()
	if _, _, err := ASAP(g, []int{1, 1}); err == nil {
		t.Error("short times accepted by ASAP")
	}
	if _, err := ALAP(g, []int{1, 1, 0, 1}, 5); err == nil {
		t.Error("zero time accepted by ALAP")
	}
	cyc := dfg.New()
	a := cyc.MustAddNode("a", "")
	b := cyc.MustAddNode("b", "")
	cyc.MustAddEdge(a, b, 0)
	cyc.MustAddEdge(b, a, 0)
	if _, _, err := ASAP(cyc, []int{1, 1}); err == nil {
		t.Error("cyclic graph accepted by ASAP")
	}
}

func TestLowerBoundRSerialChain(t *testing.T) {
	// A chain never needs more than one FU of each used type.
	g := dfg.Chain(5)
	tab := fu.UniformTable(5, []int{1, 2}, []int64{4, 1})
	lb, err := LowerBoundR(g, tab, allZero(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if lb[0] != 1 || lb[1] != 0 {
		t.Fatalf("lb = %v, want [1 0]", lb)
	}
}

func TestLowerBoundRForcedParallelism(t *testing.T) {
	// Eight independent unit-time nodes within deadline 2 need >= 4 FUs.
	g := dfg.New()
	for i := 0; i < 8; i++ {
		g.MustAddNode(string(rune('a'+i)), "")
	}
	tab := fu.UniformTable(8, []int{1}, []int64{1})
	lb, err := LowerBoundR(g, tab, allZero(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if lb[0] != 4 {
		t.Fatalf("lb = %v, want [4]", lb)
	}
	// With deadline 8 the bound drops to 1.
	lb, err = LowerBoundR(g, tab, allZero(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if lb[0] != 1 {
		t.Fatalf("loose lb = %v, want [1]", lb)
	}
}

func TestLowerBoundRInfeasible(t *testing.T) {
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{2}, []int64{1})
	if _, err := LowerBoundR(g, tab, allZero(3), 5); !errors.Is(err, hap.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestMinRScheduleDiamondTight(t *testing.T) {
	g, tab := diamond()
	a := allZero(4)
	s, cfg, err := MinRSchedule(g, tab, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline 3 forces B and C in parallel: 2 instances of type 0.
	if cfg[0] != 2 {
		t.Fatalf("cfg = %v, want 2 of type 0", cfg)
	}
	if s.Length != 3 {
		t.Fatalf("length = %d, want 3", s.Length)
	}
}

func TestMinRScheduleDiamondLooseUsesOneFU(t *testing.T) {
	g, tab := diamond()
	a := allZero(4)
	s, cfg, err := MinRSchedule(g, tab, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With one extra step, B and C serialize on a single FU.
	if cfg[0] != 1 {
		t.Fatalf("cfg = %v, want 1 of type 0", cfg)
	}
	if s.Length > 4 {
		t.Fatalf("length = %d > 4", s.Length)
	}
}

func TestMinRScheduleMixedTypes(t *testing.T) {
	g, tab := diamond()
	a := hap.Assignment{0, 1, 1, 0} // B, C slow type
	s, cfg, err := MinRSchedule(g, tab, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A(1) then B,C in parallel (2 steps each) then D: needs 2 slow FUs.
	if cfg[1] != 2 || cfg[0] != 1 {
		t.Fatalf("cfg = %v, want [1 2]", cfg)
	}
	if s.Length != 4 {
		t.Fatalf("length = %d, want 4", s.Length)
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{2, 0, 3}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.String() != "2-0-3" {
		t.Errorf("String = %q", c.String())
	}
	d := c.Clone()
	d[0] = 9
	if c[0] != 2 {
		t.Error("Clone not deep")
	}
	if !(Config{2, 1}).Covers(Config{2, 0}) {
		t.Error("Covers false negative")
	}
	if (Config{2, 0}).Covers(Config{2, 1}) {
		t.Error("Covers false positive")
	}
	if (Config{2}).Covers(Config{2, 0}) {
		t.Error("Covers ignores length")
	}
}

func TestValidateScheduleCatchesViolations(t *testing.T) {
	g, tab := diamond()
	a := allZero(4)
	s, cfg, err := MinRSchedule(g, tab, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Precedence violation.
	bad := *s
	bad.Start = append([]int(nil), s.Start...)
	bad.Start[3] = 1
	if err := ValidateSchedule(g, &bad, cfg, 3); err == nil {
		t.Error("precedence violation not caught")
	}
	// Deadline violation.
	bad.Start = append([]int(nil), s.Start...)
	bad.Start[3] = 9
	if err := ValidateSchedule(g, &bad, cfg, 3); err == nil {
		t.Error("deadline violation not caught")
	}
	// Resource violation: claim config has just one FU.
	if err := ValidateSchedule(g, s, Config{1, 0}, 3); err == nil {
		t.Error("resource violation not caught")
	}
	// Unscheduled node.
	bad.Start = append([]int(nil), s.Start...)
	bad.Start[2] = 0
	if err := ValidateSchedule(g, &bad, cfg, 3); err == nil {
		t.Error("unscheduled node not caught")
	}
}

func TestGanttRendersEveryNode(t *testing.T) {
	g, tab := diamond()
	lib := fu.MustLibrary(fu.Type{Name: "P1"}, fu.Type{Name: "P2"})
	s, cfg, err := MinRSchedule(g, tab, hap.Assignment{0, 1, 1, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	chart := Gantt(g, lib, s, cfg)
	for _, name := range []string{"A", "B", "C", "D", "P1[0]", "P2[0]", "P2[1]"} {
		if !strings.Contains(chart, name) {
			t.Errorf("Gantt missing %q:\n%s", name, chart)
		}
	}
}

// TestMinRScheduleProperties is the central property test of phase 2: on
// random DFGs with random feasible assignments, the schedule must validate,
// meet the deadline, and use at least the lower-bound resources.
func TestMinRScheduleProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := dfg.RandomDAG(rng, n, 0.25)
		tab := fu.RandomTable(rng, n, 2+rng.Intn(2))
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(tab.K()))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			return false
		}
		L := length + rng.Intn(4)
		lb, err := LowerBoundR(g, tab, a, L)
		if err != nil {
			return false
		}
		s, cfg, err := MinRSchedule(g, tab, a, L)
		if err != nil {
			return false
		}
		if !cfg.Covers(lb) {
			return false
		}
		if s.Length > L {
			return false
		}
		return ValidateSchedule(g, s, cfg, L) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMinRScheduleNeverExceedsGreedyUpperBound sanity-checks resource
// economy: the configuration never exceeds one FU instance per node.
func TestMinRScheduleNeverExceedsGreedyUpperBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 3)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(3))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			return false
		}
		_, cfg, err := MinRSchedule(g, tab, a, length+2)
		if err != nil {
			return false
		}
		return cfg.Total() <= n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
