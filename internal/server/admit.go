package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"hetsynth/internal/canon"
	"hetsynth/internal/hap"
	"hetsynth/internal/rta"
)

// AdmitRequest is the JSON body of POST /v1/admit and POST /v1/admit/jobs:
// a set of periodic tasks sharing one FU library, asked against either a
// fixed FU configuration ("config") or a cheapest-fit search ("search") —
// exactly one of the two.
//
// Each task resolves its graph and table exactly like POST /v1/solve
// (inline graph or bench name; inline table, catalog or seed) and adds a
// period plus an optional relative deadline (default: the period).
type AdmitRequest struct {
	Tasks []AdmitTaskPayload `json:"tasks"`

	Config []int               `json:"config,omitempty"`
	Search *AdmitSearchPayload `json:"search,omitempty"`

	MaxCandidates int `json:"max_candidates,omitempty"` // operating points per task; default 6
	TimeoutMS     int `json:"timeout_ms,omitempty"`
}

// AdmitTaskPayload is one periodic task of an admission request.
type AdmitTaskPayload struct {
	Name  string          `json:"name,omitempty"`
	Graph json.RawMessage `json:"graph,omitempty"`
	Bench string          `json:"bench,omitempty"`

	Table   *TablePayload `json:"table,omitempty"`
	Catalog string        `json:"catalog,omitempty"`
	Seed    *int64        `json:"seed,omitempty"`
	Types   int           `json:"types,omitempty"`

	Period   int `json:"period"`
	Deadline int `json:"deadline,omitempty"` // relative; default = period
}

// AdmitSearchPayload selects cheapest-fit configuration search: per-type
// instance prices (default all 1) and a per-type instance ceiling (default
// 8, at most rta.MaxPartition).
type AdmitSearchPayload struct {
	Prices     []int64 `json:"prices,omitempty"`
	MaxPerType int     `json:"max_per_type,omitempty"`
}

// AdmitPlacementPayload is the wire form of one admitted task's placement:
// the chosen assignment and whether the task runs on a dedicated heavy
// partition or a shared serialized channel, with its proven response bound.
type AdmitPlacementPayload struct {
	Task       int    `json:"task"`
	Name       string `json:"name,omitempty"`
	Heavy      bool   `json:"heavy"`
	Partition  []int  `json:"partition,omitempty"`
	Channel    int    `json:"channel"` // -1 for heavy placements
	Assignment []int  `json:"assignment"`
	Length     int    `json:"length"`
	TotalWork  int64  `json:"total_work"`
	Energy     int64  `json:"energy"`
	Response   int    `json:"response"`
}

// AdmitResult is the cacheable outcome of one admission analysis. Fixed-
// configuration requests report Admitted plus placements; search requests
// additionally report Found, the winning Config, its Price and the probe
// count Steps. Quality mirrors the weakest per-task solve quality
// ("exact", "heuristic" or "timeout").
type AdmitResult struct {
	Admitted   bool                    `json:"admitted"`
	Found      *bool                   `json:"found,omitempty"`
	Config     []int                   `json:"config,omitempty"`
	Price      *int64                  `json:"price,omitempty"`
	Steps      int                     `json:"steps"`
	Placements []AdmitPlacementPayload `json:"placements,omitempty"`
	Channels   [][]int                 `json:"channels,omitempty"`
	Used       []int                   `json:"used,omitempty"`
	Reason     string                  `json:"reason,omitempty"`
	Quality    string                  `json:"quality,omitempty"`
	ElapsedMS  float64                 `json:"elapsed_ms"`
}

// AdmitResponse is AdmitResult plus how the answer was produced.
type AdmitResponse struct {
	Source string `json:"source"` // "admit" or "cache"
	AdmitResult
}

// admitSpec is a fully resolved admission request: the concrete task set,
// the mode (fixed config or search), and the canonical cache key.
type admitSpec struct {
	set     rta.TaskSet
	cfg     rta.Config // nil in search mode
	search  bool
	so      rta.SearchOptions
	opts    rta.Options
	timeout int    // milliseconds; 0 = server default
	key     string // result-cache key ("admit/" + digest)
}

// decodeAdmitRequest parses and fully validates an admission body: every
// rejection is a 400 *apiError, and an accepted spec is guaranteed to pass
// rta's own input validation, so the execution path can only fail on
// context death. Mirrors decodeSolveRequestBytes' contract.
func decodeAdmitRequest(body []byte) (*admitSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req AdmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid request JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after request object")
	}
	if len(req.Tasks) == 0 {
		return nil, badRequest("tasks is required and must be non-empty")
	}
	if req.TimeoutMS < 0 {
		return nil, badRequest("negative timeout_ms %d", req.TimeoutMS)
	}
	if req.MaxCandidates < 0 || req.MaxCandidates > 64 {
		return nil, badRequest("max_candidates %d out of range [0, 64]", req.MaxCandidates)
	}
	if req.Config != nil && req.Search != nil {
		return nil, badRequest("use either config or search, not both")
	}
	if req.Config == nil && req.Search == nil {
		return nil, badRequest("a mode is required: set config or search")
	}

	spec := &admitSpec{
		timeout: req.TimeoutMS,
		opts:    rta.Options{MaxCandidates: req.MaxCandidates},
	}
	keyTasks := make([]canon.AdmitTask, 0, len(req.Tasks))
	for i, tp := range req.Tasks {
		// Reuse the solve resolvers for the graph/table sources, so admit
		// accepts exactly the shapes /v1/solve does.
		sub := &SolveRequest{
			Graph: tp.Graph, Bench: tp.Bench,
			Table: tp.Table, Catalog: tp.Catalog, Seed: tp.Seed, Types: tp.Types,
		}
		g, err := resolveGraph(sub)
		if err != nil {
			return nil, badRequest("task %d: %v", i, err.(*apiError).Msg)
		}
		tab, err := resolveTable(sub, g)
		if err != nil {
			return nil, badRequest("task %d: %v", i, err.(*apiError).Msg)
		}
		if tp.Period < 1 || tp.Period > maxDeadline {
			return nil, badRequest("task %d: period %d out of range [1, %d]", i, tp.Period, maxDeadline)
		}
		if tp.Deadline < 0 || tp.Deadline > tp.Period {
			return nil, badRequest("task %d: deadline %d not in [0, period %d] (0 means the period)", i, tp.Deadline, tp.Period)
		}
		t := rta.Task{Name: tp.Name, Graph: g, Table: tab, Period: tp.Period, Deadline: tp.Deadline}
		spec.set = append(spec.set, t)
		keyTasks = append(keyTasks, canon.AdmitTask{Graph: g, Table: tab, Period: t.Period, Deadline: t.RelDeadline()})
	}
	if err := spec.set.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}

	k := spec.set.K()
	if req.Config != nil {
		if len(req.Config) != k {
			return nil, badRequest("config covers %d FU types, tasks share %d", len(req.Config), k)
		}
		for ky, m := range req.Config {
			if m < 0 || m > rta.MaxPartition*len(req.Tasks) {
				return nil, badRequest("config count %d for type %d out of range", m, ky)
			}
		}
		spec.cfg = append(rta.Config(nil), req.Config...)
	} else {
		spec.search = true
		if req.Search.Prices != nil {
			if len(req.Search.Prices) != k {
				return nil, badRequest("search.prices covers %d FU types, tasks share %d", len(req.Search.Prices), k)
			}
			for ky, p := range req.Search.Prices {
				if p < 0 || p > 1<<40 {
					return nil, badRequest("search.prices[%d] = %d out of range [0, 2^40]", ky, p)
				}
			}
			spec.so.Prices = append([]int64(nil), req.Search.Prices...)
		}
		if req.Search.MaxPerType < 0 || req.Search.MaxPerType > rta.MaxPartition {
			return nil, badRequest("search.max_per_type %d out of range [0, %d]", req.Search.MaxPerType, rta.MaxPartition)
		}
		spec.so.MaxPerType = req.Search.MaxPerType
	}

	spec.key = "admit/" + canon.AdmitKey(keyTasks, spec.cfg, spec.so.Prices, spec.so.MaxPerType, spec.opts.MaxCandidates)
	return spec, nil
}

// buildAdmitResult converts an rta verdict (and, in search mode, the search
// outcome) into the wire result.
func (s *Server) buildAdmitResult(spec *admitSpec, v rta.Verdict, sr *rta.SearchResult, elapsed time.Duration) *AdmitResult {
	res := &AdmitResult{
		Admitted:  v.Admitted,
		Channels:  v.Channels,
		Used:      v.Used,
		Reason:    v.Reason,
		Quality:   string(v.Quality),
		Steps:     1,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	for _, p := range v.Placements {
		res.Placements = append(res.Placements, AdmitPlacementPayload{
			Task:       p.Task,
			Name:       spec.set[p.Task].Name,
			Heavy:      p.Heavy,
			Partition:  p.Partition,
			Channel:    p.Channel,
			Assignment: assignmentInts(p.Assign),
			Length:     p.Length,
			TotalWork:  p.TotalWork,
			Energy:     p.Energy,
			Response:   p.Response,
		})
	}
	if sr != nil {
		found := sr.Found
		res.Found = &found
		res.Steps = sr.Steps
		res.Quality = string(sr.Quality)
		if sr.Found {
			price := sr.Price
			res.Config = sr.Config
			res.Price = &price
		} else if res.Reason == "" {
			res.Reason = sr.Reason
		}
	}
	return res
}

// runAdmit answers an admission request: result cache first, then a fresh
// analysis. Fresh verdicts are cached under the canonical key unless their
// quality degraded to timeout (a roomier budget deserves a fresh run —
// same policy as solves). Admission latencies feed the shared solve
// histogram, so /metrics and the overload estimator see admit load too.
func (s *Server) runAdmit(ctx context.Context, spec *admitSpec) (*AdmitResult, string, error) {
	if v, ok := s.cache.get(spec.key); ok {
		s.met.cacheHits.Add(1)
		return v.(*AdmitResult), "cache", nil
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	start := time.Now()
	if s.preSolve != nil {
		s.preSolve(ctx)
	}
	var res *AdmitResult
	if spec.search {
		sr, err := rta.CheapestConfig(ctx, spec.set, spec.so, spec.opts)
		if err != nil {
			s.met.solveErrors.Add(1)
			return nil, "", err
		}
		res = s.buildAdmitResult(spec, sr.Verdict, &sr, time.Since(start))
		res.Admitted = sr.Found
	} else {
		v, err := rta.Admit(ctx, spec.set, spec.cfg, spec.opts)
		if err != nil {
			s.met.solveErrors.Add(1)
			return nil, "", err
		}
		res = s.buildAdmitResult(spec, v, nil, time.Since(start))
	}
	s.met.admitSearchSteps.Add(int64(res.Steps))
	s.met.observeSolve(time.Since(start))
	if res.Quality != string(hap.QualityTimeout) {
		s.cache.put(spec.key, res)
	}
	return res, "admit", nil
}

// serveAdmitResult writes a finished admission response and settles the
// outcome counters: exactly one of admit_accepted/admit_rejected per served
// verdict, cache hits included.
func (s *Server) serveAdmitResult(w http.ResponseWriter, res *AdmitResult, source string) {
	s.countAdmitVerdict(res)
	countEndpoint(&s.met.admitCached, &s.met.admitUncached, source)
	if res.Quality != "" {
		w.Header().Set(QualityHeader, res.Quality)
	}
	writeJSON(w, http.StatusOK, AdmitResponse{Source: source, AdmitResult: *res})
}

// countAdmitVerdict bumps the accepted/rejected balance for one served
// verdict.
func (s *Server) countAdmitVerdict(res *AdmitResult) {
	if res.Admitted {
		s.met.admitAccepted.Add(1)
	} else {
		s.met.admitRejected.Add(1)
	}
}

// handleAdmit is POST /v1/admit: the synchronous admission endpoint. It
// shares the solve pipeline's budgets (body timeout_ms, DeadlineHeader,
// server caps), pool admission control (429 shedding with Retry-After) and
// abandon semantics; the verdict quality is echoed in QualityHeader.
func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	buf := getBuf()
	defer putBuf(buf)
	body, aerr := readBody(buf, r.Body)
	if aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}
	spec, err := decodeAdmitRequest(body)
	if err != nil {
		s.met.badRequests.Add(1)
		writeErr(w, err.(*apiError))
		return
	}
	if aerr := s.applyAdmitDeadline(spec, r); aerr != nil {
		writeErr(w, aerr)
		return
	}
	s.met.requests.Add(1)
	s.met.admitRequests.Add(1)

	if v, ok := s.cache.get(spec.key); ok {
		s.met.cacheHits.Add(1)
		s.serveAdmitResult(w, v.(*AdmitResult), "cache")
		return
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, s.solveBudget(&solveSpec{timeout: spec.timeout}))
	out := &admitOutcome{}
	t, apiErr := s.dispatch(ctx, cancel, func(ctx context.Context) {
		out.res, out.source, out.err = s.runAdmit(ctx, spec)
	}, nil, nil)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	select {
	case <-t.done:
	case <-r.Context().Done():
		return // client gone; the analysis keeps running and lands in the cache
	case <-ctx.Done():
		// Budget expired with the task queued or running; grant the anytime
		// search a short grace to surface its best-so-far, then abandon.
		grace := time.NewTimer(abandonGrace)
		defer grace.Stop()
		select {
		case <-t.done:
		case <-r.Context().Done():
			return
		case <-grace.C:
			s.met.abandoned.Add(1)
			writeErr(w, &apiError{Status: 504, Msg: "admission analysis exceeded its time budget"})
			return
		}
	}
	if out.res == nil && out.err == nil {
		writeErr(w, classifySolveErr(ctx.Err()))
		return
	}
	if out.err != nil {
		writeErr(w, classifySolveErr(out.err))
		return
	}
	s.serveAdmitResult(w, out.res, out.source)
}

type admitOutcome struct {
	res    *AdmitResult
	source string
	err    error
}

// applyAdmitDeadline folds the DeadlineHeader into the spec's budget,
// counting a malformed header as a bad request (the solve contract).
func (s *Server) applyAdmitDeadline(spec *admitSpec, r *http.Request) *apiError {
	ms, aerr := computeDeadlineMS(r)
	if aerr != nil {
		s.met.badRequests.Add(1)
		return aerr
	}
	if ms > 0 && (spec.timeout == 0 || ms < spec.timeout) {
		spec.timeout = ms
	}
	return nil
}

// handleAdmitJobSubmit is POST /v1/admit/jobs: the asynchronous flavor of
// /v1/admit. The created job lives in the same store as solve jobs (GET
// /v1/jobs/{id}, DELETE to cancel) with an *AdmitResult payload; terminal
// counters stay balanced through settleJob exactly like solve jobs.
func (s *Server) handleAdmitJobSubmit(w http.ResponseWriter, r *http.Request) {
	buf := getBuf()
	defer putBuf(buf)
	body, aerr := readBody(buf, r.Body)
	if aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}
	spec, err := decodeAdmitRequest(body)
	if err != nil {
		s.met.badRequests.Add(1)
		writeErr(w, err.(*apiError))
		return
	}
	if aerr := s.applyAdmitDeadline(spec, r); aerr != nil {
		writeErr(w, aerr)
		return
	}
	s.met.requests.Add(1)
	s.met.admitRequests.Add(1)

	j := &Job{ID: newJobID(), status: JobQueued, created: time.Now(), done: make(chan struct{})}
	if v, ok := s.cache.get(spec.key); ok {
		s.met.cacheHits.Add(1)
		res := v.(*AdmitResult)
		if s.settleJob(j, JobDone, "cache", res, "", 0) {
			s.countAdmitVerdict(res)
			s.met.admitCached.Add(1)
		}
		s.jobs.add(j)
		s.met.jobsSubmitted.Add(1)
		writeJSON(w, http.StatusCreated, j.view())
		return
	}

	tctx, tcancel := context.WithTimeout(s.baseCtx, s.solveBudget(&solveSpec{timeout: spec.timeout}))
	jctx, jcancel := context.WithCancel(tctx)
	j.mu.Lock()
	j.cancel = jcancel
	j.mu.Unlock()
	out := &admitOutcome{}
	finish := func() {
		switch {
		case out.res != nil:
			if s.settleJob(j, JobDone, out.source, out.res, "", 0) {
				s.countAdmitVerdict(out.res)
				countEndpoint(&s.met.admitCached, &s.met.admitUncached, out.source)
			}
		default:
			err := out.err
			if err == nil { // skipped in queue: context cancelled or timed out
				err = jctx.Err()
			}
			ae := classifySolveErr(err)
			status := JobFailed
			if errors.Is(err, context.Canceled) {
				status = JobCanceled
			}
			s.settleJob(j, status, "", nil, ae.Msg, ae.Status)
		}
	}
	t, apiErr := s.dispatch(jctx, func() { jcancel(); tcancel() }, func(ctx context.Context) {
		out.res, out.source, out.err = s.runAdmit(ctx, spec)
	}, j.setRunning, finish)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	s.jobs.add(j)
	s.met.jobsSubmitted.Add(1)
	go func() { <-t.done; finish() }()
	writeJSON(w, http.StatusCreated, j.view())
}
