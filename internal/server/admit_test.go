package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// admitBody is a two-task harmonic set over a shared seeded 2-type library;
// small enough to admit on a modest configuration.
const admitBody = `{"tasks":[
  {"name":"fir","bench":"fir16","seed":3,"types":2,"period":200},
  {"name":"biquad","bench":"iir4","seed":4,"types":2,"period":400,"deadline":300}
],"config":[2,2]}`

const admitSearchBody = `{"tasks":[
  {"name":"fir","bench":"fir16","seed":3,"types":2,"period":200},
  {"name":"biquad","bench":"iir4","seed":4,"types":2,"period":400,"deadline":300}
],"search":{"prices":[5,2],"max_per_type":4}}`

func TestAdmitSyncAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/admit", admitBody)
	if code != 200 {
		t.Fatalf("admit: status %d: %v", code, m)
	}
	if m["source"] != "admit" {
		t.Fatalf("source = %v, want admit", m["source"])
	}
	if m["admitted"] != true {
		t.Fatalf("set not admitted: %v", m)
	}
	placements := m["placements"].([]any)
	if len(placements) != 2 {
		t.Fatalf("placements = %v, want 2", placements)
	}
	for _, p := range placements {
		pm := p.(map[string]any)
		if pm["assignment"] == nil {
			t.Fatalf("placement without assignment: %v", pm)
		}
		if pm["response"].(float64) <= 0 {
			t.Fatalf("placement without response bound: %v", pm)
		}
	}

	code, m = postJSON(t, ts, "POST", "/v1/admit", admitBody)
	if code != 200 || m["source"] != "cache" {
		t.Fatalf("repeat admit: status %d source %v, want 200/cache", code, m["source"])
	}

	snap := s.Metrics()
	if snap.AdmitRequests != 2 || snap.AdmitAccepted != 2 || snap.AdmitRejected != 0 {
		t.Fatalf("admit counters requests=%d accepted=%d rejected=%d, want 2/2/0",
			snap.AdmitRequests, snap.AdmitAccepted, snap.AdmitRejected)
	}
	if snap.AdmitSearchSteps < 1 {
		t.Fatalf("admit_search_steps = %d, want >= 1", snap.AdmitSearchSteps)
	}
	if snap.SolveLatency.Count < 1 {
		t.Fatal("admit latency not observed in the solve histogram")
	}
}

func TestAdmitQualityHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Post(ts.URL+"/v1/admit", "application/json", strings.NewReader(admitBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if q := resp.Header.Get(QualityHeader); q == "" {
		t.Fatal("no quality header on admit response")
	}
}

func TestAdmitSearch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/admit", admitSearchBody)
	if code != 200 {
		t.Fatalf("search admit: status %d: %v", code, m)
	}
	if m["found"] != true || m["admitted"] != true {
		t.Fatalf("search result %v, want found+admitted", m)
	}
	if m["config"] == nil || m["price"] == nil {
		t.Fatalf("search result missing config/price: %v", m)
	}
	if m["steps"].(float64) < 2 {
		t.Fatalf("steps = %v, want the full probe plus descent", m["steps"])
	}
	snap := s.Metrics()
	if snap.AdmitSearchSteps < 2 {
		t.Fatalf("admit_search_steps = %d, want >= 2", snap.AdmitSearchSteps)
	}
}

func TestAdmitRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// One FU of the slow type only: the wide task set cannot fit.
	body := `{"tasks":[
	  {"name":"e","bench":"elliptic","seed":7,"types":2,"period":40,"deadline":30}
	],"config":[0,1]}`
	code, m := postJSON(t, ts, "POST", "/v1/admit", body)
	if code != 200 {
		t.Fatalf("admit: status %d: %v", code, m)
	}
	if m["admitted"] != false || m["reason"] == "" {
		t.Fatalf("verdict %v, want rejection with reason", m)
	}
	snap := s.Metrics()
	if snap.AdmitRejected != 1 || snap.AdmitAccepted != 0 {
		t.Fatalf("counters accepted=%d rejected=%d, want 0/1", snap.AdmitAccepted, snap.AdmitRejected)
	}
}

func TestAdmitBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct{ name, body string }{
		{"malformed", `{"tasks":`},
		{"no tasks", `{"tasks":[],"config":[1]}`},
		{"no mode", `{"tasks":[{"bench":"fir16","seed":1,"period":100}]}`},
		{"both modes", `{"tasks":[{"bench":"fir16","seed":1,"period":100}],"config":[1,1,1],"search":{}}`},
		{"bad period", `{"tasks":[{"bench":"fir16","seed":1,"period":0}],"config":[1,1,1]}`},
		{"deadline past period", `{"tasks":[{"bench":"fir16","seed":1,"period":10,"deadline":11}],"config":[1,1,1]}`},
		{"config width", `{"tasks":[{"bench":"fir16","seed":1,"types":2,"period":100}],"config":[1]}`},
		{"mixed K", `{"tasks":[{"bench":"fir16","seed":1,"types":2,"period":100},{"bench":"fir16","seed":1,"types":3,"period":100}],"config":[1,1]}`},
		{"price width", `{"tasks":[{"bench":"fir16","seed":1,"types":2,"period":100}],"search":{"prices":[1]}}`},
		{"unknown field", `{"tasks":[{"bench":"fir16","seed":1,"period":100}],"config":[1,1,1],"zap":1}`},
		{"unknown bench", `{"tasks":[{"bench":"nope","seed":1,"period":100}],"config":[1,1,1]}`},
		{"trailing", `{"tasks":[{"bench":"fir16","seed":1,"period":100}],"config":[1,1,1]}{}`},
	}
	for _, tc := range cases {
		code, m := postJSON(t, ts, "POST", "/v1/admit", tc.body)
		if code != 400 {
			t.Errorf("%s: status %d (%v), want 400", tc.name, code, m)
		}
	}
	// Malformed compute-deadline header is a 400 too.
	req, err := http.NewRequest("POST", ts.URL+"/v1/admit", strings.NewReader(admitBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "soon")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad deadline header: status %d, want 400", resp.StatusCode)
	}
	snap := s.Metrics()
	if snap.BadRequests != int64(len(cases)+1) {
		t.Fatalf("bad_requests = %d, want %d", snap.BadRequests, len(cases)+1)
	}
	if snap.AdmitAccepted != 0 && snap.AdmitRejected != 0 {
		t.Fatal("bad requests settled verdict counters")
	}
}

func TestAdmitJobAsync(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/admit/jobs", admitBody)
	if code != 201 {
		t.Fatalf("job submit: status %d: %v", code, m)
	}
	id := m["id"].(string)
	var final map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never settled")
		}
		_, jm := postJSON(t, ts, "GET", "/v1/jobs/"+id, "")
		st := jm["status"]
		if st == JobDone || st == JobFailed || st == JobCanceled {
			final = jm
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final["status"] != JobDone {
		t.Fatalf("job settled %v: %v", final["status"], final["error"])
	}
	res := final["result"].(map[string]any)
	if res["admitted"] != true {
		t.Fatalf("job result %v, want admitted", res)
	}

	// Second submission hits the result cache and settles immediately.
	code, m = postJSON(t, ts, "POST", "/v1/admit/jobs", admitBody)
	if code != 201 || m["status"] != JobDone || m["source"] != "cache" {
		t.Fatalf("cached job submit: status %d %v, want immediate done/cache", code, m)
	}

	snap := s.Metrics()
	if snap.JobsSubmitted != 2 || snap.JobsDone != 2 {
		t.Fatalf("jobs submitted=%d done=%d, want 2/2", snap.JobsSubmitted, snap.JobsDone)
	}
	if snap.AdmitRequests != 2 || snap.AdmitAccepted != 2 {
		t.Fatalf("admit counters requests=%d accepted=%d, want 2/2", snap.AdmitRequests, snap.AdmitAccepted)
	}
}

// TestAdmitCounterBalance drives a mix of sync and async admit traffic with
// no errors or shedding and asserts the ledger:
// admit_requests == admit_accepted + admit_rejected once everything settles
// (the settleJob-style balance for the admission endpoint).
func TestAdmitCounterBalance(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	bodies := []string{
		admitBody,
		admitSearchBody,
		`{"tasks":[{"name":"e","bench":"elliptic","seed":7,"types":2,"period":40,"deadline":30}],"config":[0,1]}`,
		admitBody, // cache hit
	}
	for i, b := range bodies {
		path := "/v1/admit"
		if i%2 == 1 {
			path = "/v1/admit/jobs"
		}
		code, m := postJSON(t, ts, "POST", path, b)
		if code != 200 && code != 201 {
			t.Fatalf("request %d: status %d: %v", i, code, m)
		}
		if code == 201 {
			id := m["id"].(string)
			deadline := time.Now().Add(10 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatalf("job %d never settled", i)
				}
				_, jm := postJSON(t, ts, "GET", "/v1/jobs/"+id, "")
				st := jm["status"]
				if st == JobDone || st == JobFailed || st == JobCanceled {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	snap := s.Metrics()
	if snap.AdmitRequests != int64(len(bodies)) {
		t.Fatalf("admit_requests = %d, want %d", snap.AdmitRequests, len(bodies))
	}
	if snap.AdmitAccepted+snap.AdmitRejected != snap.AdmitRequests {
		t.Fatalf("ledger broken: accepted %d + rejected %d != requests %d",
			snap.AdmitAccepted, snap.AdmitRejected, snap.AdmitRequests)
	}
}

// TestAdmitTimeout exhausts a sync admission request's compute budget: the
// execution hook holds the analysis until its context dies, so the search
// surfaces a deadline error and the handler answers 504.
func TestAdmitTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.preSolve = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	body := `{"tasks":[{"bench":"fir16","seed":1,"types":2,"period":200}],"search":{},"timeout_ms":40}`
	code, m := postJSON(t, ts, "POST", "/v1/admit", body)
	if code != 504 {
		t.Fatalf("timed-out admit: status %d: %v", code, m)
	}
	snap := s.Metrics()
	if snap.SolveErrors == 0 {
		t.Fatal("admission deadline error not counted in solve_errors")
	}
	if snap.AdmitAccepted != 0 || snap.AdmitRejected != 0 {
		t.Fatal("failed admission settled a verdict counter")
	}
}

// TestAdmitAbandoned covers the grace-expiry abandon: the analysis keeps
// running well past both the budget and the post-budget grace, so the
// handler gives up with 504 and counts the request abandoned.
func TestAdmitAbandoned(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.preSolve = func(ctx context.Context) {
		<-ctx.Done()
		time.Sleep(abandonGrace + 250*time.Millisecond)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	body := `{"tasks":[{"bench":"fir16","seed":2,"types":2,"period":200}],"config":[1,1],"timeout_ms":30}`
	code, m := postJSON(t, ts, "POST", "/v1/admit", body)
	if code != 504 {
		t.Fatalf("abandoned admit: status %d: %v", code, m)
	}
	if s.Metrics().Abandoned == 0 {
		t.Fatal("abandoned metric not incremented")
	}
}

// TestAdmitJobCancel cancels a running admission job and checks it settles
// as canceled without touching the accepted/rejected verdict ledger.
func TestAdmitJobCancel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	arrived := make(chan struct{}, 1)
	s.preSolve = func(ctx context.Context) {
		select {
		case arrived <- struct{}{}:
		default:
		}
		<-ctx.Done()
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	code, m := postJSON(t, ts, "POST", "/v1/admit/jobs", admitBody)
	if code != 201 {
		t.Fatalf("submit: status %d: %v", code, m)
	}
	id := m["id"].(string)
	<-arrived
	if code, _ = postJSON(t, ts, "DELETE", "/v1/jobs/"+id, ""); code != 200 {
		t.Fatalf("cancel: status %d", code)
	}
	final := waitJobTerminal(t, ts, id)
	if final["status"] != JobCanceled {
		t.Fatalf("canceled admit job ended as %v: %v", final["status"], final)
	}
	snap := s.Metrics()
	if snap.AdmitAccepted != 0 || snap.AdmitRejected != 0 {
		t.Fatal("canceled admission settled a verdict counter")
	}
	if snap.JobsCanceledFinal != 1 {
		t.Fatalf("jobs_canceled_final = %d, want 1", snap.JobsCanceledFinal)
	}
}

// TestAdmitJobQueueSkip expires an admission job's budget while it is still
// queued behind a busy worker: the pool skips the dead task and the job must
// settle as failed with the timeout classification.
func TestAdmitJobQueueSkip(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	s.preSolve = func(ctx context.Context) {
		select {
		case arrived <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Occupy the single worker with a blocked solve job.
	code, _ := postJSON(t, ts, "POST", "/v1/jobs", `{"bench":"diffeq","seed":21,"slack":4,"algorithm":"repeat"}`)
	if code != 201 {
		t.Fatalf("blocker submit: status %d", code)
	}
	<-arrived

	body := `{"tasks":[{"bench":"fir16","seed":6,"types":2,"period":200}],"config":[1,1],"timeout_ms":30}`
	code, m := postJSON(t, ts, "POST", "/v1/admit/jobs", body)
	if code != 201 {
		t.Fatalf("admit submit: status %d: %v", code, m)
	}
	id := m["id"].(string)
	time.Sleep(60 * time.Millisecond) // let the queued budget lapse
	close(release)                    // free the worker; it skips the dead admit task
	final := waitJobTerminal(t, ts, id)
	if final["status"] != JobFailed {
		t.Fatalf("queue-skipped admit job ended as %v: %v", final["status"], final)
	}
	if final["error"] == "" || final["error"] == nil {
		t.Fatalf("failed job carries no error: %v", final)
	}
}

// TestAdmitQueueFull checks both admission endpoints shed with 429 when the
// pool queue is at capacity — the same admission control as solves.
func TestAdmitQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	s.preSolve = func(ctx context.Context) {
		select {
		case arrived <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); close(release); s.Close() })

	// Solve #1 occupies the worker, #2 the single queue slot.
	if code, _ := postJSON(t, ts, "POST", "/v1/jobs", `{"bench":"diffeq","seed":31,"slack":4,"algorithm":"repeat"}`); code != 201 {
		t.Fatalf("blocker 1: status %d", code)
	}
	<-arrived
	if code, _ := postJSON(t, ts, "POST", "/v1/jobs", `{"bench":"diffeq","seed":32,"slack":4,"algorithm":"repeat"}`); code != 201 {
		t.Fatalf("blocker 2: status %d", code)
	}
	body := `{"tasks":[{"bench":"fir16","seed":8,"types":2,"period":200}],"config":[1,1]}`
	if code, m := postJSON(t, ts, "POST", "/v1/admit", body); code != http.StatusTooManyRequests {
		t.Fatalf("shed sync admit: status %d (%v), want 429", code, m)
	}
	if code, m := postJSON(t, ts, "POST", "/v1/admit/jobs", body); code != http.StatusTooManyRequests {
		t.Fatalf("shed admit job: status %d (%v), want 429", code, m)
	}
}

// waitJobTerminal polls a job until it reaches a terminal status.
func waitJobTerminal(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled", id)
		}
		_, m := postJSON(t, ts, "GET", "/v1/jobs/"+id, "")
		if st := m["status"]; st == JobDone || st == JobFailed || st == JobCanceled {
			return m
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmitDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.draining.Store(true)
	code, m := postJSON(t, ts, "POST", "/v1/admit", admitBody)
	if code != 503 {
		t.Fatalf("draining admit: status %d: %v", code, m)
	}
}

// FuzzAdmit throws arbitrary bodies at the admission decoder: malformed
// input must surface as a 400 apiError (never a panic), and any accepted
// body must produce a stable canonical key across re-decodes.
func FuzzAdmit(f *testing.F) {
	f.Add(admitBody)
	f.Add(admitSearchBody)
	f.Add(`{"tasks":[{"bench":"fir16","seed":1,"period":100}],"config":[1,1,1]}`)
	f.Add(`{"tasks":[{"graph":{"nodes":[{"name":"a","op":"add"}],"edges":[]},"table":{"time":[[1]],"cost":[[2]]},"period":8,"deadline":4}],"config":[1]}`)
	f.Add(`{"tasks":[{"bench":"fir16","seed":1,"period":100}],"search":{"max_per_type":99}}`)
	f.Add(`{"tasks":`)
	f.Add(`{"tasks":[],"config":[]}`)
	f.Add(`{"tasks":[{"bench":"fir16","seed":1,"period":-3}],"config":[1,1,1]}`)
	f.Add(`{"tasks":[{"bench":"fir16","seed":1,"period":100}],"config":[1,1,1]}{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := decodeAdmitRequest([]byte(body))
		if err != nil {
			var ae *apiError
			if !errors.As(err, &ae) {
				t.Fatalf("decode error is %T (%v), want *apiError", err, err)
			}
			if ae.Status != 400 {
				t.Fatalf("decode rejection carries status %d, want 400", ae.Status)
			}
			return
		}
		if spec.key == "" || !strings.HasPrefix(spec.key, "admit/") {
			t.Fatalf("accepted spec with bad key %q", spec.key)
		}
		if err := spec.set.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid task set: %v", err)
		}
		if spec.search && spec.cfg != nil {
			t.Fatal("spec has both a config and search mode")
		}
		if !spec.search && spec.cfg == nil {
			t.Fatal("spec has neither config nor search mode")
		}
		again, err := decodeAdmitRequest([]byte(body))
		if err != nil {
			t.Fatalf("body accepted once, rejected on re-decode: %v", err)
		}
		if spec.key != again.key {
			t.Fatalf("canonical key unstable across decodes: %s vs %s", spec.key, again.key)
		}
	})
}
