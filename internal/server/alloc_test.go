package server

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// TestCachedPathAllocs asserts the zero-alloc budget of the raw fast path:
// a repeated request is answered from pre-encoded bytes with pooled buffers,
// so a whole handler pass — request object, routing, cache probe, write —
// must fit in a two-digit allocation budget. The pre-sharding, per-request
// encode path spent ~1,300 allocations on the same hit.
func TestCachedPathAllocs(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	body := []byte(`{"bench":"volterra","seed":1,"slack":5}`)

	serve := func() int {
		req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	// First pass solves, second serves from the digest cache and stores the
	// raw encoding, third and later replay it.
	for i := 0; i < 3; i++ {
		if code := serve(); code != 200 {
			t.Fatalf("warmup %d: status %d", i, code)
		}
	}

	allocs := testing.AllocsPerRun(200, func() {
		if serve() != 200 {
			t.Fatal("cached request failed")
		}
	})
	t.Logf("cached-path allocs/op: %.1f", allocs)
	if raceEnabled {
		t.Skip("allocation budget not asserted under the race detector")
	}
	// Budget: the request/recorder fixtures plus the raw-path lookup and one
	// response write. Headroom over the observed count, far under the ~1,300
	// of the old encode-per-hit path.
	if allocs > 100 {
		t.Fatalf("cached path spends %.1f allocs/op, budget is 100", allocs)
	}
}
