package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// maxBatchEntries bounds one POST /v1/solve-batch body; a sweep larger than
// this should be split client-side so admission control can interleave other
// traffic between the chunks.
const maxBatchEntries = 256

// BatchRequest is the JSON body of POST /v1/solve-batch: an ordered list of
// ordinary solve requests answered together. Entries that share a graph and
// table (a deadline sweep) are solved through one shared frontier DP instead
// of one solve each, and byte-identical duplicates are answered once.
type BatchRequest struct {
	Entries []SolveRequest `json:"entries"`
}

// BatchEntryResult is the outcome of one batch entry, in request order.
// Exactly one of Result or Error is set; Status carries the HTTP status the
// same request would have received on /v1/solve (errors only).
type BatchEntryResult struct {
	Source string       `json:"source,omitempty"`
	Result *SolveResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
	Status int          `json:"status,omitempty"`
}

// BatchResponse is the JSON body answering POST /v1/solve-batch. The batch
// itself is always 200 once decoded; per-entry failures are isolated in
// Results.
type BatchResponse struct {
	Results   []BatchEntryResult `json:"results"`
	Entries   int                `json:"entries"`
	Deduped   int                `json:"deduped"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// batchGroup is the unit of pool work for a batch: all distinct entries that
// can share solver state. Tree-shaped entries of the same instance digest
// form one group (they share one FrontierSolver: the first solve builds the
// complete curve, the rest are pure tracebacks); everything else is a group
// of one.
type batchGroup struct {
	specs []*solveSpec
	idxs  []int // positions in the response array, parallel to specs
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	buf := getBuf()
	defer putBuf(buf)
	body, aerr := readBody(buf, r.Body)
	if aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}

	binReq := isBinContentType(r.Header.Get("Content-Type"))
	codec := respCodecFor(binReq, r.Header.Get("Accept"))

	// Raw replay: a byte-identical batch whose every entry settled is served
	// from its stored encoding — same contract as the /v1/solve fast path. An
	// entry missing the negotiated response codec falls through to a normal
	// run, which merges the fresh encoding in.
	hdrOK := true
	if h := r.Header.Get(DeadlineHeader); h != "" && !validDeadlineHeader(h) {
		hdrOK = false
	}
	if hdrOK {
		if v, ok := s.rawCache.getBytes(body); ok && v.(*rawEntry).batch {
			if e := v.(*rawEntry); e.body[codec] != nil {
				s.met.batchRequests.Add(1)
				s.met.cacheHits.Add(1)
				s.met.rawHits.Add(1)
				s.met.batchCached.Add(int64(e.entries))
				w.Header().Set("Content-Type", codec.contentType())
				w.WriteHeader(http.StatusOK)
				//hetsynth:ignore retval a failed write means the client is gone;
				// the response status is already committed.
				_, _ = w.Write(e.body[codec])
				return
			}
		}
	}

	// Decode per the request codec into one resolved entry list. Semantic
	// failures (unknown bench, bad deadline) are isolated per entry so one
	// malformed sweep point never voids the rest of the batch; an unparseable
	// encoding rejects the whole body.
	var entries []binBatchEntry
	if binReq {
		var aerr *apiError
		if entries, aerr = decodeBatchRequestBin(body); aerr != nil {
			s.met.badRequests.Add(1)
			writeErr(w, aerr)
			return
		}
	} else {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var breq BatchRequest
		if err := dec.Decode(&breq); err != nil {
			s.met.badRequests.Add(1)
			writeErr(w, badRequest("invalid batch JSON: %v", err))
			return
		}
		if len(breq.Entries) == 0 {
			s.met.badRequests.Add(1)
			writeErr(w, badRequest("batch has no entries"))
			return
		}
		if len(breq.Entries) > maxBatchEntries {
			s.met.badRequests.Add(1)
			writeErr(w, badRequest("batch has %d entries, maximum is %d", len(breq.Entries), maxBatchEntries))
			return
		}
		entries = make([]binBatchEntry, len(breq.Entries))
		for i := range breq.Entries {
			spec, err := resolve(&breq.Entries[i])
			if err != nil {
				entries[i].aerr = err.(*apiError)
				continue
			}
			entries[i].spec = spec
		}
	}
	// A malformed compute-deadline header rejects the whole batch, matching
	// the /v1/solve contract (silently ignoring it would fake compliance).
	if !hdrOK {
		s.met.badRequests.Add(1)
		writeErr(w, badRequest("invalid %s header %q: want a positive integer millisecond count",
			DeadlineHeader, r.Header.Get(DeadlineHeader)))
		return
	}
	s.met.batchRequests.Add(1)
	s.met.batchEntries.Add(int64(len(entries)))

	out := make([]BatchEntryResult, len(entries))
	specs := make([]*solveSpec, len(entries))

	firstIdx := make(map[string]int, len(entries)) // request digest -> leader entry
	leader := make([]int, len(entries))            // -1: distinct; else: index answered for us
	deduped := 0
	for i := range entries {
		leader[i] = -1
		if ae := entries[i].aerr; ae != nil {
			out[i] = BatchEntryResult{Error: ae.Msg, Status: ae.Status}
			continue
		}
		spec := entries[i].spec
		if aerr := applyComputeDeadline(spec, r); aerr != nil {
			out[i] = BatchEntryResult{Error: aerr.Msg, Status: aerr.Status}
			continue
		}
		if j, ok := firstIdx[spec.key]; ok {
			leader[i] = j
			deduped++
			continue
		}
		firstIdx[spec.key] = i
		specs[i] = spec
	}
	s.met.batchDeduped.Add(int64(deduped))

	// Answer what the caches already know, then group the rest for the pool.
	groups := make(map[string]*batchGroup)
	var order []*batchGroup
	for i, spec := range specs {
		if spec == nil {
			continue
		}
		if res, source, apiErr := s.tryFast(spec); apiErr != nil {
			out[i] = BatchEntryResult{Error: apiErr.Msg, Status: apiErr.Status}
			continue
		} else if res != nil {
			out[i] = BatchEntryResult{Source: source, Result: res}
			continue
		}
		key := "solo/" + spec.key
		if spec.tree {
			key = spec.instKey
		}
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{}
			groups[key] = g
			order = append(order, g)
		}
		g.specs = append(g.specs, spec)
		g.idxs = append(g.idxs, i)
	}

	// Fan the groups out over the worker pool; each group runs sequentially
	// on one worker so a sweep's entries reuse the frontier it just built.
	type submitted struct {
		g      *batchGroup
		t      *task
		ctx    context.Context
		ran    bool
		cancel context.CancelFunc
	}
	var subs []*submitted
	for _, g := range order {
		budget := time.Duration(0)
		for _, spec := range g.specs {
			if b := s.solveBudget(spec); b > budget {
				budget = b
			}
		}
		gctx, gcancel := context.WithTimeout(s.baseCtx, budget)
		sub := &submitted{g: g, ctx: gctx, cancel: gcancel}
		sub.t = &task{
			ctx:  gctx,
			done: make(chan struct{}),
			run: func(ctx context.Context) {
				sub.ran = true
				s.runBatchGroup(ctx, g, out)
			},
		}
		if s.draining.Load() {
			gcancel()
			for _, i := range g.idxs {
				out[i] = BatchEntryResult{Error: "server is draining", Status: 503}
			}
			continue
		}
		if err := s.pool.submit(sub.t); err != nil {
			gcancel()
			ae := &apiError{Status: 503, Msg: "server is draining"}
			if errors.Is(err, errQueueFull) {
				s.met.shed.Add(1)
				ae = &apiError{Status: http.StatusTooManyRequests, Msg: "job queue full, retry later"}
			}
			for _, i := range g.idxs {
				out[i] = BatchEntryResult{Error: ae.Msg, Status: ae.Status}
			}
			continue
		}
		go func() { <-sub.t.done; sub.cancel() }()
		subs = append(subs, sub)
	}

	// Wait for every submitted group. A vanished client abandons the wait but
	// not the solves — results still land in the caches for the retry.
	for _, sub := range subs {
		select {
		case <-sub.t.done:
		case <-r.Context().Done():
			return
		}
		if !sub.ran {
			// Skipped in the queue: its context died before a worker got to it.
			ae := classifySolveErr(sub.ctx.Err())
			for _, i := range sub.g.idxs {
				out[i] = BatchEntryResult{Error: ae.Msg, Status: ae.Status}
			}
		}
	}

	// Fill duplicates from their leaders last, so they see final outcomes.
	for i, j := range leader {
		if j >= 0 {
			out[i] = out[j]
		}
	}
	for i := range out {
		if out[i].Result != nil {
			countEndpoint(&s.met.batchCached, &s.met.batchUncached, out[i].Source)
		}
	}
	resp := BatchResponse{
		Results:   out,
		Entries:   len(entries),
		Deduped:   deduped,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	var enc []byte
	if codec == codecBin {
		bb := getBinBuf()
		defer putBinBuf(bb)
		bb.b = appendBatchRespFrame(bb.b, &resp)
		enc = bb.b
	} else {
		eb := getEncBuf()
		defer putEncBuf(eb)
		if err := eb.enc.Encode(resp); err != nil {
			writeErr(w, &apiError{Status: 500, Msg: "encoding response: " + err.Error()})
			return
		}
		enc = eb.buf.Bytes()
	}
	w.Header().Set("Content-Type", codec.contentType())
	w.WriteHeader(http.StatusOK)
	//hetsynth:ignore retval a failed write means the client is gone; the
	// response status is already committed and there is no recovery path.
	_, _ = w.Write(enc)

	// Store the encoding for raw replay only when every entry settled with a
	// real result (transient errors — timeouts, load shed, draining — and
	// timeout-quality incumbents are run-dependent and must re-run).
	if len(body) <= maxRawKeyBytes && batchSettled(out) {
		s.storeRaw(body, codec, enc, "", true, len(out))
	}
}

// batchSettled reports whether every entry carries a deterministic settled
// result, making the whole response safe to replay for an identical body.
func batchSettled(out []BatchEntryResult) bool {
	for i := range out {
		if out[i].Result == nil || out[i].Result.Quality == "timeout" {
			return false
		}
	}
	return true
}

// runBatchGroup solves a group's entries in order on one worker. Errors are
// per entry (a tight infeasible sweep point does not abort its siblings);
// only context death cuts the remainder short. For tree groups, the shared
// FrontierSolver's cache entry is pinned from the moment the first entry has
// built it until the group finishes, so the sweep's own result insertions
// (or concurrent traffic) cannot evict the solver mid-flight.
func (s *Server) runBatchGroup(ctx context.Context, g *batchGroup, out []BatchEntryResult) {
	pinnedKey := ""
	defer func() {
		if pinnedKey != "" {
			s.cache.release(pinnedKey)
		}
	}()
	for j, spec := range g.specs {
		if err := ctx.Err(); err != nil {
			ae := classifySolveErr(err)
			for _, i := range g.idxs[j:] {
				out[i] = BatchEntryResult{Error: ae.Msg, Status: ae.Status}
			}
			return
		}
		res, source, err := s.runSolve(ctx, spec)
		if err != nil {
			ae := classifySolveErr(err)
			out[g.idxs[j]] = BatchEntryResult{Error: ae.Msg, Status: ae.Status}
		} else {
			out[g.idxs[j]] = BatchEntryResult{Source: source, Result: res}
		}
		if pinnedKey == "" && spec.tree {
			if _, ok := s.cache.acquire(spec.instKey); ok {
				pinnedKey = spec.instKey
			}
		}
	}
}
