package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// batchBody assembles a BatchRequest JSON body from entry fragments.
func batchBody(entries ...string) string {
	return `{"entries":[` + strings.Join(entries, ",") + `]}`
}

func newRequest(t *testing.T, url, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return req
}

// TestSolveBatchMatchesIndividual is the batch/individual differential: a
// mixed batch — a same-instance deadline sweep (which the endpoint answers
// through one shared frontier), duplicates, and unrelated standalone entries
// — must return exactly what the same requests get one at a time.
func TestSolveBatchMatchesIndividual(t *testing.T) {
	var entries []string
	// Same-graph different-deadline sweep: the shared-frontier group.
	for slack := 0; slack < 8; slack++ {
		entries = append(entries, fmt.Sprintf(`{"bench":"volterra","seed":1,"slack":%d}`, slack))
	}
	// Byte-identical duplicates of sweep points.
	entries = append(entries, entries[2], entries[5])
	// Standalone entries on other instances and algorithms.
	entries = append(entries,
		`{"bench":"elliptic","seed":3,"slack":4}`,
		`{"bench":"volterra","seed":2,"slack":6,"algorithm":"repeat"}`,
		`{"bench":"elliptic","seed":3,"slack":2,"algorithm":"greedy"}`,
	)

	// Individual answers first, on a separate server so neither run warms the
	// other's caches.
	_, tsInd := newTestServer(t, Config{})
	want := make([]map[string]any, len(entries))
	for i, e := range entries {
		code, m := postJSON(t, tsInd, "POST", "/v1/solve", e)
		if code != 200 {
			t.Fatalf("individual entry %d: status %d: %v", i, code, m)
		}
		want[i] = m
	}

	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/solve-batch", batchBody(entries...))
	if code != 200 {
		t.Fatalf("batch: status %d: %v", code, m)
	}
	if int(m["entries"].(float64)) != len(entries) {
		t.Fatalf("entries = %v, want %d", m["entries"], len(entries))
	}
	if int(m["deduped"].(float64)) != 2 {
		t.Fatalf("deduped = %v, want 2 (two repeated sweep points)", m["deduped"])
	}
	results := m["results"].([]any)
	if len(results) != len(entries) {
		t.Fatalf("got %d results, want %d", len(results), len(entries))
	}
	for i, r := range results {
		res := r.(map[string]any)
		if res["error"] != nil {
			t.Fatalf("entry %d: unexpected error %v", i, res["error"])
		}
		got := res["result"].(map[string]any)
		for _, field := range []string{"cost", "length", "quality", "algorithm"} {
			if fmt.Sprint(got[field]) != fmt.Sprint(want[i][field]) {
				t.Errorf("entry %d: %s = %v, individual solve said %v",
					i, field, got[field], want[i][field])
			}
		}
	}
	snap := s.Metrics()
	if snap.BatchRequests != 1 || snap.BatchEntries != int64(len(entries)) || snap.BatchDeduped != 2 {
		t.Fatalf("batch metrics = %d/%d/%d, want 1/%d/2",
			snap.BatchRequests, snap.BatchEntries, snap.BatchDeduped, len(entries))
	}
}

// TestSolveBatchErrorIsolation: one malformed and one unsolvable entry must
// not void their siblings, and each carries the status /v1/solve would give.
func TestSolveBatchErrorIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/solve-batch", batchBody(
		`{"bench":"volterra","seed":1,"slack":4}`,
		`{"bench":"no-such-bench","seed":1,"slack":4}`,
		`{"bench":"volterra","seed":1,"deadline":1}`,
		`{"bench":"elliptic","seed":2,"slack":3}`,
	))
	if code != 200 {
		t.Fatalf("batch with bad entries: status %d, want 200 (errors are per entry): %v", code, m)
	}
	results := m["results"].([]any)
	for _, i := range []int{0, 3} {
		if r := results[i].(map[string]any); r["result"] == nil {
			t.Fatalf("good entry %d failed: %v", i, r)
		}
	}
	for _, i := range []int{1, 2} {
		r := results[i].(map[string]any)
		if r["error"] == nil || r["result"] != nil {
			t.Fatalf("bad entry %d: want error-only, got %v", i, r)
		}
		if st := int(r["status"].(float64)); st < 400 {
			t.Fatalf("bad entry %d: status %d, want a 4xx", i, st)
		}
	}
}

func TestSolveBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty":       `{"entries":[]}`,
		"not-json":    `{"entries":`,
		"unknown-key": `{"entrees":[{"bench":"volterra","seed":1,"slack":4}]}`,
	} {
		if code, m := postJSON(t, ts, "POST", "/v1/solve-batch", body); code != 400 {
			t.Errorf("%s: status %d, want 400: %v", name, code, m)
		}
	}
	var big []string
	for i := 0; i <= maxBatchEntries; i++ {
		big = append(big, fmt.Sprintf(`{"bench":"volterra","seed":%d,"slack":4}`, i+1))
	}
	if code, m := postJSON(t, ts, "POST", "/v1/solve-batch", batchBody(big...)); code != 400 {
		t.Errorf("oversize batch: status %d, want 400: %v", code, m)
	}
}

// TestRawReplayNoCrossEndpoint pins down the raw cache's endpoint isolation:
// a body stored by one endpoint must never be replayed by the other, even
// though both share the verbatim-body keyspace.
func TestRawReplayNoCrossEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// A body that is a syntactically valid /v1/solve request AND could be
	// stored raw by the batch endpoint does not exist (schemas differ), so
	// cross-replay would surface as a bogus 200 here. Exercise both orders.
	batch := batchBody(`{"bench":"volterra","seed":1,"slack":4}`)
	for i := 0; i < 2; i++ { // second round stores, then replays raw
		if code, m := postJSON(t, ts, "POST", "/v1/solve-batch", batch); code != 200 {
			t.Fatalf("batch round %d: status %d: %v", i, code, m)
		}
	}
	if got := s.Metrics().RawHits; got != 1 {
		t.Fatalf("raw hits after identical batch replay = %d, want 1", got)
	}
	// The stored batch body must be a miss (and a 400) on /v1/solve.
	if code, _ := postJSON(t, ts, "POST", "/v1/solve", batch); code != 400 {
		t.Fatalf("batch body on /v1/solve: status %d, want 400", code)
	}

	// And a /v1/solve raw entry must not satisfy /v1/solve-batch.
	solo := `{"bench":"elliptic","seed":5,"slack":3}`
	for i := 0; i < 3; i++ { // solve, cache-hit (stores raw), raw-hit
		if code, _ := postJSON(t, ts, "POST", "/v1/solve", solo); code != 200 {
			t.Fatalf("solve round %d failed", i)
		}
	}
	if got := s.Metrics().RawHits; got != 2 {
		t.Fatalf("raw hits after solo replay = %d, want 2", got)
	}
	if code, _ := postJSON(t, ts, "POST", "/v1/solve-batch", solo); code != 400 {
		t.Fatalf("solo body on /v1/solve-batch: status %d, want 400", code)
	}
}

// TestRawReplayContract: replayed responses must be byte-equal in meaning to
// the decode-path answer, and a malformed deadline header must still 400
// even when a raw entry exists for the body.
func TestRawReplayContract(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"bench":"volterra","seed":1,"slack":5}`
	var first map[string]any
	for i := 0; i < 3; i++ {
		code, m := postJSON(t, ts, "POST", "/v1/solve", body)
		if code != 200 {
			t.Fatalf("round %d: status %d", i, code)
		}
		if i == 1 {
			first = m
		}
		if i == 2 { // raw-replayed round
			if m["source"] != "cache" {
				t.Fatalf("replayed source = %v, want cache", m["source"])
			}
			for _, field := range []string{"cost", "length", "quality"} {
				if fmt.Sprint(m[field]) != fmt.Sprint(first[field]) {
					t.Fatalf("replay %s = %v, cached answer said %v", field, m[field], first[field])
				}
			}
		}
	}
	// Malformed deadline header: the raw entry must not short-circuit the 400.
	req := newRequest(t, ts.URL+"/v1/solve", body)
	req.Header.Set(DeadlineHeader, "banana")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed deadline header on raw-cached body: status %d, want 400", resp.StatusCode)
	}
	// A well-formed generous header may take the raw path; the stored answer
	// is settled, so serving it honors any positive budget.
	req = newRequest(t, ts.URL+"/v1/solve", body)
	req.Header.Set(DeadlineHeader, "5000")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("valid deadline header on raw-cached body: status %d, want 200", resp.StatusCode)
	}
}
