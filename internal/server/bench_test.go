package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// benchConcurrencies are the client fan-outs measured by the end-to-end
// throughput benchmarks (BENCH_2.json).
var benchConcurrencies = []int{1, 8, 64}

// benchClient serves the one-shot warmup requests; its idle pool matches the
// largest measured fan-out so warmups never leave stale dial state behind
// and repeated warm() calls reuse one connection instead of re-dialing.
var benchClient = &http.Client{Transport: &http.Transport{
	MaxIdleConnsPerHost: benchConcurrencies[len(benchConcurrencies)-1],
}}

// fire distributes b.N solve requests across conc client goroutines and
// fails the benchmark on any non-200.
func fire(b *testing.B, url string, conc int, body func(i int) string) {
	b.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc}}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 32<<10)
			for i := range next {
				resp, err := client.Post(url, "application/json", strings.NewReader(body(i)))
				if err == nil {
					// The benchmark measures the server: drain the body into a
					// reused buffer and only decode it to report a failure.
					if resp.StatusCode != 200 {
						var m map[string]any
						json.NewDecoder(resp.Body).Decode(&m)
						err = fmt.Errorf("status %d: %v", resp.StatusCode, m)
					} else {
						for {
							if _, rerr := resp.Body.Read(buf); rerr != nil {
								break
							}
						}
					}
					resp.Body.Close()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	b.StopTimer()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}

// BenchmarkHTTPSolveCached measures served-from-cache throughput: every
// request is identical, so after one warmup solve the pool is never touched.
func BenchmarkHTTPSolveCached(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			body := `{"bench":"elliptic","seed":1,"slack":4}`
			warm(b, ts.URL, body)
			fire(b, ts.URL+"/v1/solve", conc, func(int) string { return body })
		})
	}
}

// BenchmarkHTTPSolveUncached measures full-solve throughput: every request
// names a fresh instance (distinct seed), so nothing hits the cache and each
// goes through the queue, the single-flight group, and a worker.
func BenchmarkHTTPSolveUncached(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			fire(b, ts.URL+"/v1/solve", conc, func(i int) string {
				return fmt.Sprintf(`{"bench":"elliptic","seed":%d,"slack":4}`, i+1)
			})
		})
	}
}

// BenchmarkHTTPSolveFrontier measures the frontier fast path: one tree
// instance, deadlines cycling over its curve, so after the first solve every
// answer is traced from the cached frontier without a worker.
func BenchmarkHTTPSolveFrontier(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			warm(b, ts.URL, `{"bench":"volterra","seed":1,"slack":12}`)
			fire(b, ts.URL+"/v1/solve", conc, func(i int) string {
				return fmt.Sprintf(`{"bench":"volterra","seed":1,"slack":%d}`, i%12)
			})
		})
	}
}

// batchSweepBody is a 64-entry deadline sweep over one tree instance, the
// shape POST /v1/solve-batch exists for: one shared frontier DP answers all
// entries.
func batchSweepBody(entries int) string {
	var sb strings.Builder
	sb.WriteString(`{"entries":[`)
	for i := 0; i < entries; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"bench":"volterra","seed":1,"slack":%d}`, i)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// BenchmarkHTTPSolveBatch measures a 64-entry same-instance deadline sweep
// submitted as ONE batch request per iteration. Compare per-entry cost with
// BenchmarkHTTPSolveSweepIndividual (divide ns/op by 64).
func BenchmarkHTTPSolveBatch(b *testing.B) {
	ts, stop := newBenchServer()
	defer stop()
	body := batchSweepBody(64)
	fire(b, ts.URL+"/v1/solve-batch", 1, func(int) string { return body })
}

// BenchmarkHTTPSolveSweepIndividual is the baseline the batch endpoint is
// judged against: the same 64-deadline sweep issued as 64 separate
// /v1/solve requests per iteration. The bodies repeat across iterations, so
// every individual request gets the raw-body fast path — the best the
// one-request-at-a-time interface can possibly do — and the batch endpoint
// still has to beat it on round trips alone.
func BenchmarkHTTPSolveSweepIndividual(b *testing.B) {
	ts, stop := newBenchServer()
	defer stop()
	// One iteration = one full 64-entry sweep, matching a batch iteration.
	bodies := make([]string, 64)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"bench":"volterra","seed":1,"slack":%d}`, i)
	}
	fire(b, ts.URL+"/v1/solve", 1, func(i int) string { return bodies[i%64] })
}

// admitBenchBody is a two-task admission request against a fixed
// configuration; distinct seeds name distinct task sets, defeating the
// result cache.
func admitBenchBody(seed int) string {
	return fmt.Sprintf(`{"tasks":[`+
		`{"bench":"fir16","seed":%d,"types":2,"period":200},`+
		`{"bench":"diffeq","seed":%d,"types":2,"period":400,"deadline":300}],`+
		`"config":[2,2]}`, seed, seed+1)
}

// BenchmarkHTTPAdmitCached measures admission-verdict replay throughput:
// every request is the identical task set, so after one warmup analysis the
// verdict comes straight off the digest-keyed result cache.
func BenchmarkHTTPAdmitCached(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			body := admitBenchBody(1)
			resp, err := benchClient.Post(ts.URL+"/v1/admit", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("warmup status %d", resp.StatusCode)
			}
			fire(b, ts.URL+"/v1/admit", conc, func(int) string { return body })
		})
	}
}

// BenchmarkHTTPAdmitUncached measures full admission-analysis throughput:
// every request names a fresh task set (distinct table seeds), so each runs
// candidate sampling and placement on a worker.
func BenchmarkHTTPAdmitUncached(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			fire(b, ts.URL+"/v1/admit", conc, func(i int) string { return admitBenchBody(2*i + 1) })
		})
	}
}

func newBenchServer() (*httptest.Server, func()) {
	s := New(Config{QueueDepth: 4096, CacheSize: 1 << 17, JobRetention: 16})
	ts := httptest.NewServer(s.Handler())
	return ts, func() { ts.Close(); s.Close() }
}

func warm(b *testing.B, base, body string) {
	b.Helper()
	resp, err := benchClient.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
}
