package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used map protected by one
// mutex. It is the single-shard building block of shardedCache — and, used
// standalone, the differential oracle the sharded cache is tested against.
// Entries can be pinned with a refcount; pinned entries are exempt from
// eviction, so a long sweep can hold its per-instance artifacts (e.g. a
// hap.FrontierSolver) without a concurrent burst of insertions dropping
// them mid-flight.
type lruCache struct {
	mu    sync.Mutex
	max   int                      // immutable after creation
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu
}

type lruEntry struct {
	key  string
	val  any
	pins int // protected by the owning cache's mu; > 0 exempts from eviction
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// getBytes is get for a key held as raw bytes. The lookup converts the key
// in-place via the compiler's map-index optimization, so a hot-path probe
// allocates nothing.
//
// hetsynth:hotpath
func (c *lruCache) getBytes(key []byte) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a key, evicting the least recently used
// unpinned entry when the cache is over capacity. Refreshing an existing
// key replaces its value but keeps its pin count.
func (c *lruCache) put(key string, val any) { c.putPinned(key, val, 0) }

func (c *lruCache) putPinned(key string, val any, pins int) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.val = val
		e.pins += pins
		c.mu.Unlock()
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, pins: pins})
	c.mu.Unlock()
	c.evict()
}

// evict drops least-recently-used unpinned entries until the cache fits.
// It runs in its own critical section, after the insertion that triggered
// it: eviction does not need to be atomic with the insert, and a transient
// one-entry overshoot between the two sections is harmless. When every
// entry is pinned the cache is allowed to stay over capacity — pins are
// short-lived (the lifetime of one solve or batch group), so the overshoot
// is bounded and temporary.
func (c *lruCache) evict() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.ll.Len() > c.max {
		victim := (*list.Element)(nil)
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			if el.Value.(*lruEntry).pins == 0 {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		c.ll.Remove(victim)
		delete(c.items, victim.Value.(*lruEntry).key)
	}
}

// acquire is get plus a pin: while the caller holds the pin, the entry
// cannot be evicted. Every successful acquire must be paired with a
// release.
func (c *lruCache) acquire(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*lruEntry)
	e.pins++
	return e.val, true
}

// putAcquired inserts or refreshes a key with one pin already held, so a
// freshly built artifact cannot be evicted before its builder releases it.
func (c *lruCache) putAcquired(key string, val any) { c.putPinned(key, val, 1) }

// release drops one pin. Releasing an absent key is a no-op (the entry can
// only be absent if release calls were unbalanced, which is a caller bug,
// but must not corrupt the cache). Entries that were held over capacity
// become evictable again.
func (c *lruCache) release(key string) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return
	}
	e := el.Value.(*lruEntry)
	if e.pins > 0 {
		e.pins--
	}
	over := e.pins == 0 && c.ll.Len() > c.max
	c.mu.Unlock()
	if over {
		c.evict()
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// pinned reports the total pin count held across this cache's entries. At
// any quiet point — no request in flight, no batch group running — every
// acquire/putAcquired has been balanced by a release, so it must be zero;
// TestPinBalance asserts exactly that.
func (c *lruCache) pinned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		n += el.Value.(*lruEntry).pins
	}
	return n
}

// shardedCache spreads an LRU over a power-of-two number of lruCache
// shards selected by a hash of the key, so concurrent readers on distinct
// keys (the all-cache-hit hot path at high client fan-out) never contend on
// one mutex. Keys are canonical digests or raw request bytes — both
// high-entropy — so FNV-1a spreads them evenly and per-shard LRU order is a
// good approximation of global LRU order. Capacity is divided evenly across
// shards; eviction is per shard.
type shardedCache struct {
	shards []*lruCache
	mask   uint32
}

// newShardedCache builds a cache of max total entries over n shards; n is
// rounded up to a power of two and at least 1.
func newShardedCache(max, n int) *shardedCache {
	shards := 1
	for shards < n {
		shards <<= 1
	}
	per := (max + shards - 1) / shards
	c := &shardedCache{shards: make([]*lruCache, shards), mask: uint32(shards - 1)}
	for i := range c.shards {
		c.shards[i] = newLRUCache(per)
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash of the key bytes.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

// hetsynth:hotpath
func fnv1aBytes(key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func (c *shardedCache) shard(key string) *lruCache { return c.shards[fnv1a(key)&c.mask] }

// get returns the cached value and marks it most recently used in its shard.
func (c *shardedCache) get(key string) (any, bool) { return c.shard(key).get(key) }

// getBytes is get for a key held as raw bytes; the probe allocates nothing.
//
// hetsynth:hotpath
func (c *shardedCache) getBytes(key []byte) (any, bool) {
	return c.shards[fnv1aBytes(key)&c.mask].getBytes(key)
}

// put inserts or refreshes a key in its shard.
func (c *shardedCache) put(key string, val any) { c.shard(key).put(key, val) }

// acquire is get plus an eviction-exempting pin; pair with release.
func (c *shardedCache) acquire(key string) (any, bool) { return c.shard(key).acquire(key) }

// putAcquired inserts or refreshes a key with one pin already held.
func (c *shardedCache) putAcquired(key string, val any) { c.shard(key).putAcquired(key, val) }

// release drops one pin from the key's entry.
func (c *shardedCache) release(key string) { c.shard(key).release(key) }

// pinnedByShard reports each shard's total pin count, in shard order.
func (c *shardedCache) pinnedByShard() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.pinned()
	}
	return out
}

// len reports the total number of cached entries across all shards.
func (c *shardedCache) len() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}
