package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used map. It backs both key
// spaces the server caches — full solve results (request digest) and
// per-instance frontier solvers (instance digest) — in one eviction domain,
// so hot instances keep their frontiers while cold entries of either kind
// age out together.
type lruCache struct {
	mu    sync.Mutex
	max   int                      // immutable after creation
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a key, evicting the least recently used entry
// when the cache is over capacity.
func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	el := c.ll.PushFront(&lruEntry{key: key, val: val})
	c.items[key] = el
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
