package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(3)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// a is now most recent; inserting d must evict b (the LRU).
	c.put("d", 4)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction though it was least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("a", 2)
	if v, _ := c.get("a"); v != 2 {
		t.Fatalf("update lost: %v", v)
	}
	if c.len() != 1 {
		t.Fatalf("duplicate key inflated len to %d", c.len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%100)
				c.put(k, i)
				c.get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.len())
	}
}

// TestShardedCacheDifferential drives the sharded cache and the single-shard
// oracle with the same randomized operation stream. Because shards partition
// the keyspace, global LRU order differs — what must agree is the contract:
// hits return the last value put, pinned entries are never evicted, and
// total size stays within capacity (plus pinned overflow).
func TestShardedCacheDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := newShardedCache(64, 8)
	oracle := newLRUCache(1 << 20) // effectively unbounded: remembers every put
	written := make(map[string]int)
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("key-%d", rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			v := op
			sc.put(k, v)
			oracle.put(k, v)
			written[k] = v
		case 1:
			if v, ok := sc.get(k); ok {
				if want, seen := written[k]; !seen || v != want {
					t.Fatalf("op %d: get(%s) = %v, oracle says %v (seen=%v)", op, k, v, want, seen)
				}
			}
		case 2:
			if v, ok := sc.getBytes([]byte(k)); ok {
				if want, seen := written[k]; !seen || v != want {
					t.Fatalf("op %d: getBytes(%s) = %v, oracle says %v", op, k, v, want)
				}
			}
		}
	}
	if sc.len() > 64+8 { // per-shard rounding can add at most one per shard
		t.Fatalf("sharded cache holds %d entries, capacity 64 over 8 shards", sc.len())
	}
}

// TestCachePinning is the eviction-affinity regression test: a pinned entry
// must survive any insertion burst (the batch endpoint pins its shared
// FrontierSolver while its own result insertions hammer the cache), and must
// become evictable again after release.
func TestCachePinning(t *testing.T) {
	for name, c := range map[string]interface {
		acquire(string) (any, bool)
		putAcquired(string, any)
		put(string, any)
		get(string) (any, bool)
		release(string)
	}{
		"single-shard": newLRUCache(4),
		"sharded":      newShardedCache(4, 4),
	} {
		c.putAcquired("solver", "curve")
		// Flood far past capacity; the pinned entry must survive.
		for i := 0; i < 100; i++ {
			c.put(fmt.Sprintf("%s-flood-%d", name, i), i)
		}
		if _, ok := c.get("solver"); !ok {
			t.Fatalf("%s: pinned entry evicted by insertion flood", name)
		}
		// A second pin from a concurrent user keeps it alive after one release.
		if _, ok := c.acquire("solver"); !ok {
			t.Fatalf("%s: acquire missed a present entry", name)
		}
		c.release("solver")
		for i := 0; i < 100; i++ {
			c.put(fmt.Sprintf("%s-flood2-%d", name, i), i)
		}
		if _, ok := c.get("solver"); !ok {
			t.Fatalf("%s: entry with one remaining pin was evicted", name)
		}
		// Fully released: the next flood may (and in a 1-entry shard, must)
		// evict it.
		c.release("solver")
		for i := 0; i < 100; i++ {
			c.put(fmt.Sprintf("%s-flood3-%d", name, i), i)
		}
		if _, ok := c.get("solver"); ok && name == "single-shard" {
			// Single shard of capacity 4 flooded with 100 entries: gone.
			t.Fatalf("%s: released entry survived a full eviction cycle", name)
		}
	}
}

// TestShardedCacheConcurrentPins exercises pin/release races under load; the
// invariant is no lost entries while pinned and no panics/corruption.
func TestShardedCacheConcurrentPins(t *testing.T) {
	c := newShardedCache(8, 4)
	c.putAcquired("hot", 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if w%2 == 0 {
					if _, ok := c.acquire("hot"); ok {
						c.release("hot")
					}
				} else {
					c.put(fmt.Sprintf("junk-%d-%d", w, i), i)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, ok := c.get("hot"); !ok {
		t.Fatal("entry with a standing pin vanished under concurrent churn")
	}
	c.release("hot")
}
