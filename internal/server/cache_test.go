package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(3)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// a is now most recent; inserting d must evict b (the LRU).
	c.put("d", 4)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction though it was least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("a", 2)
	if v, _ := c.get("a"); v != 2 {
		t.Fatalf("update lost: %v", v)
	}
	if c.len() != 1 {
		t.Fatalf("duplicate key inflated len to %d", c.len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%100)
				c.put(k, i)
				c.get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.len())
	}
}
