package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkHTTPFloor is the control for the concurrency-scaling numbers: a
// handler that does nothing but drain the body into a pooled buffer and
// write a constant. Whatever conc64/conc1 ratio this shows is the harness
// and net/http scheduling floor on the measurement host — the server's own
// contribution to the ratio is the cached benchmark's ratio minus this one.
// On a single-CPU container the floor alone is ~1.3×, because 128 client
// and connection goroutines time-share one core; on multicore hosts it
// drops toward 1.0 and the sharded cache keeps the cached path there.
func BenchmarkHTTPFloor(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				buf := getBuf()
				defer putBuf(buf)
				//hetsynth:ignore retval benchmark control handler; a short
				// read only skews the floor measurement, never correctness.
				_, _ = buf.ReadFrom(r.Body)
				//hetsynth:ignore retval same: the client checks the status.
				_, _ = w.Write([]byte(`{"ok":true}`))
			}))
			defer ts.Close()
			fire(b, ts.URL, conc, func(int) string { return `{}` })
		})
	}
}
