package server

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bodies at the request decoder: malformed
// input must surface as a 400 apiError (never a panic or a foreign error
// type), and any accepted body must resolve deterministically — the same
// bytes re-decoded yield the same canonical cache keys.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(`{"bench":"elliptic","seed":1,"slack":4}`)
	f.Add(`{"bench":"volterra","seed":9,"slack":2,"algorithm":"anytime","timeout_ms":50}`)
	f.Add(`{"graph":{"nodes":[{"name":"a","op":"add"}],"edges":[]},"table":{"time":[[1]],"cost":[[2]]},"deadline":3}`)
	f.Add(`{"bench":"diffeq","catalog":"generic3","deadline":40,"schedule":true}`)
	f.Add(`{"bench":`)
	f.Add(`{"bench":"elliptic","seed":1,"deadline":-5}`)
	f.Add(`{"bench":"elliptic","seed":1,"slack":4}{"x":1}`)
	f.Add(`{"bench":"elliptic","seed":1,"deadline":2147483999}`)
	f.Add(`{"bench":"elliptic","seed":1,"slack":4,"types":99}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := decodeSolveRequest(strings.NewReader(body))
		if err != nil {
			var ae *apiError
			if !errors.As(err, &ae) {
				t.Fatalf("decode error is %T (%v), want *apiError", err, err)
			}
			if ae.Status != 400 {
				t.Fatalf("decode rejection carries status %d, want 400", ae.Status)
			}
			return
		}
		if spec.prob.Validate() != nil {
			t.Fatalf("decoder accepted an invalid problem: %v", spec.prob.Validate())
		}
		if spec.key == "" || spec.instKey == "" {
			t.Fatal("accepted spec with empty canonical keys")
		}
		again, err := decodeSolveRequest(strings.NewReader(body))
		if err != nil {
			t.Fatalf("body accepted once, rejected on re-decode: %v", err)
		}
		if spec.key != again.key || spec.instKey != again.instKey {
			t.Fatalf("canonical keys unstable across decodes: (%s,%s) vs (%s,%s)",
				spec.key, spec.instKey, again.key, again.instKey)
		}
		if spec.anytime != (spec.algoName == "anytime") {
			t.Fatalf("anytime flag %v inconsistent with algorithm %q", spec.anytime, spec.algoName)
		}
	})
}
