package server

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"sync"
)

// maxRawKeyBytes bounds request bodies admitted as raw-cache keys: bodies
// past this are not hot-path material (they carry large inline graphs or
// tables) and would bloat the raw cache for no latency win.
const maxRawKeyBytes = 64 << 10

// rawEntry is a fully encoded answer stored under the verbatim request body:
// the exact bytes to replay, plus the quality for the response header. body
// holds one pre-encoded response per wire codec (indexed by codecID); a nil
// slot means that codec's encoding has not been produced yet and the replay
// path falls through to a normal solve, which merges the fresh encoding into
// a replacement entry. Keeping both codecs in ONE entry under ONE key makes
// their cache lifetime atomic: pin, refresh, and eviction always cover the
// JSON and binary variants together, so neither can leak after the other is
// gone. batch marks entries stored by /v1/solve-batch — each endpoint treats
// the other's entries as misses, so a body that happens to be stored by one
// endpoint can never be replayed with the other's semantics. Entries are
// immutable after insertion (merges build a new entry).
type rawEntry struct {
	body    [numCodecs][]byte
	quality string
	batch   bool
	entries int // solve entries the replayed answer covers (1, or the batch size)
}

// bufPool recycles request-body buffers. Ownership is exclusive: a buffer
// obtained from getBuf (and every slice into it, such as readBody's result)
// must not be referenced after putBuf.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) { bufPool.Put(b) }

// encBuf pairs a reusable buffer with a JSON encoder bound to it, so the
// response path encodes with zero per-request encoder or buffer allocations.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encBufPool = sync.Pool{New: func() any {
	eb := &encBuf{}
	eb.enc = json.NewEncoder(&eb.buf)
	eb.enc.SetEscapeHTML(false)
	return eb
}}

func getEncBuf() *encBuf {
	eb := encBufPool.Get().(*encBuf)
	eb.buf.Reset()
	return eb
}

func putEncBuf(eb *encBuf) { encBufPool.Put(eb) }

// readBody slurps an HTTP request body into buf, enforcing maxBodyBytes. The
// returned slice aliases buf and dies with it.
func readBody(buf *bytes.Buffer, r io.Reader) ([]byte, *apiError) {
	if _, err := buf.ReadFrom(io.LimitReader(r, maxBodyBytes+1)); err != nil {
		return nil, badRequest("reading request body: %v", err)
	}
	if buf.Len() > maxBodyBytes {
		return nil, badRequest("request body exceeds %d bytes", maxBodyBytes)
	}
	return buf.Bytes(), nil
}

// validDeadlineHeader reports whether an X-Hetsynth-Deadline-Ms value would
// be accepted by applyComputeDeadline, without building a spec.
func validDeadlineHeader(h string) bool {
	ms, err := strconv.Atoi(strings.TrimSpace(h))
	return err == nil && ms > 0
}
