package server

import (
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// solve-latency histogram; the implicit last bucket is +Inf.
var latencyBucketsMS = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metrics holds the server's operational counters. Everything is atomics so
// the hot path never takes a lock; /metrics renders a consistent-enough
// snapshot (individual counters are exact, cross-counter skew is bounded by
// in-flight requests).
type metrics struct {
	start time.Time

	queueDepth atomic.Int64 // tasks accepted but not yet running
	inFlight   atomic.Int64 // tasks currently on a worker

	requests      atomic.Int64 // HTTP solve/job submissions decoded OK
	badRequests   atomic.Int64 // 4xx rejections at decode/validation
	queueRejected atomic.Int64 // submissions bounced off a full queue

	cacheHits    atomic.Int64 // answered from the result cache
	rawHits      atomic.Int64 // subset of cacheHits served from the raw-body cache
	frontierHits atomic.Int64 // answered from a cached frontier curve
	coalesced    atomic.Int64 // shared another request's in-flight solve
	solves       atomic.Int64 // full solver executions
	solveErrors  atomic.Int64 // solver executions that returned an error

	batchRequests atomic.Int64 // POST /v1/solve-batch requests decoded OK
	batchEntries  atomic.Int64 // entries across all batch requests
	batchDeduped  atomic.Int64 // batch entries answered by an earlier duplicate in the same batch

	// Per-endpoint served-verdict split. "Cached" covers every answer
	// produced without a fresh execution on this node — raw-body replay,
	// result-cache and frontier-curve hits; "uncached" means a solver (or
	// admission analysis) ran, coalesced followers included (their answer
	// still cost an execution somewhere in this process). The batch pair
	// counts entries, not requests, so sweeps report their real hit depth.
	solveCached   atomic.Int64
	solveUncached atomic.Int64
	batchCached   atomic.Int64
	batchUncached atomic.Int64
	admitCached   atomic.Int64
	admitUncached atomic.Int64

	// forwardedIn counts requests relayed by a cluster router (the
	// ForwardedHeader was set), so an operator can read the share of a
	// node's traffic arriving via affinity routing off /metrics.
	forwardedIn atomic.Int64

	// Admission-control endpoint (/v1/admit). Every served verdict bumps
	// exactly one of accepted/rejected — cache hits included — so after all
	// admit traffic settles without errors or shedding,
	// admitRequests == admitAccepted + admitRejected.
	admitRequests    atomic.Int64 // admit submissions decoded OK (sync + jobs)
	admitAccepted    atomic.Int64 // verdicts served with the set admitted / a config found
	admitRejected    atomic.Int64 // verdicts served with the set rejected / no config
	admitSearchSteps atomic.Int64 // cumulative admission probes across fresh executions

	shed      atomic.Int64 // requests load-shed with 429 (queue full or predicted overload)
	abandoned atomic.Int64 // sync waits given up past deadline + grace (504, result discarded)
	degraded  atomic.Int64 // solver executions that returned a timeout-quality incumbent
	exactRes  atomic.Int64 // solver executions that returned a proven-optimal result

	// Stateful sessions (/v1/instances). patches counts accepted delta
	// batches; patchesRejected the 400s (also counted under badRequests when
	// the body itself was malformed). sseDropped counts frames shed by slow
	// subscribers' drop-oldest mailboxes.
	sessionsCreated atomic.Int64
	sessionsEvicted atomic.Int64
	patches         atomic.Int64
	patchesRejected atomic.Int64
	sseFrames       atomic.Int64
	sseDropped      atomic.Int64

	jobsSubmitted atomic.Int64
	jobsCanceled  atomic.Int64 // DELETE /v1/jobs/{id} cancel requests
	// Terminal job states; after a drain,
	// jobsSubmitted == jobsDone + jobsFailed + jobsCanceledFinal.
	jobsDone          atomic.Int64
	jobsFailed        atomic.Int64
	jobsCanceledFinal atomic.Int64

	latCount atomic.Int64
	latSumUS atomic.Int64   // microseconds, summed over solves
	latHist  []atomic.Int64 // len(latencyBucketsMS)+1; last is +Inf
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), latHist: make([]atomic.Int64, len(latencyBucketsMS)+1)}
}

// observeSolve records one full solver execution's wall time.
func (m *metrics) observeSolve(d time.Duration) {
	m.latCount.Add(1)
	m.latSumUS.Add(d.Microseconds())
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	m.latHist[i].Add(1)
}

// countEndpoint bumps one side of a per-endpoint cached/uncached pair for a
// served result, keyed by its response source annotation: cache, frontier and
// raw replays were answered from held state; solve and coalesced paid (or
// rode) a fresh execution.
func countEndpoint(cached, uncached *atomic.Int64, source string) {
	switch source {
	case "cache", "frontier", "raw":
		cached.Add(1)
	default:
		uncached.Add(1)
	}
}

// meanSolve returns the observed mean solver-execution latency, or zero
// before any solve has completed. It feeds the queue-wait estimate behind
// admission control and Retry-After hints.
func (m *metrics) meanSolve() time.Duration {
	n := m.latCount.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(m.latSumUS.Load()/n) * time.Microsecond
}

// MetricsSnapshot is the JSON layout of GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`

	Requests      int64 `json:"requests"`
	BadRequests   int64 `json:"bad_requests"`
	QueueRejected int64 `json:"queue_rejected"`

	CacheHits    int64   `json:"cache_hits"`
	RawHits      int64   `json:"raw_hits"`
	FrontierHits int64   `json:"frontier_hits"`
	Coalesced    int64   `json:"coalesced"`
	Solves       int64   `json:"solves"`
	SolveErrors  int64   `json:"solve_errors"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	BatchRequests int64 `json:"batch_requests"`
	BatchEntries  int64 `json:"batch_entries"`
	BatchDeduped  int64 `json:"batch_deduped"`

	Endpoints   EndpointCounters `json:"endpoints"`
	ForwardedIn int64            `json:"forwarded_in"`

	AdmitRequests    int64 `json:"admit_requests"`
	AdmitAccepted    int64 `json:"admit_accepted"`
	AdmitRejected    int64 `json:"admit_rejected"`
	AdmitSearchSteps int64 `json:"admit_search_steps"`

	Shed      int64 `json:"shed"`
	Abandoned int64 `json:"abandoned"`
	Degraded  int64 `json:"degraded"`
	ExactRes  int64 `json:"exact_results"`

	SessionsActive  int   `json:"sessions_active"`
	SessionsCreated int64 `json:"sessions_created"`
	SessionsEvicted int64 `json:"sessions_evicted"`
	Patches         int64 `json:"patches"`
	PatchesRejected int64 `json:"patches_rejected"`
	SSEFrames       int64 `json:"sse_frames"`
	SSEDropped      int64 `json:"sse_dropped"`

	JobsSubmitted     int64 `json:"jobs_submitted"`
	JobsCanceled      int64 `json:"jobs_canceled"`
	JobsDone          int64 `json:"jobs_done"`
	JobsFailed        int64 `json:"jobs_failed"`
	JobsCanceledFinal int64 `json:"jobs_canceled_final"`

	SolveLatency histogramSnapshot `json:"solve_latency"`
}

// EndpointCounters is the per-endpoint cached-vs-uncached split in /metrics:
// how many served verdicts each endpoint answered from held state (raw
// replay, result cache, frontier curve) versus by running an execution. The
// batch pair counts entries, not requests.
type EndpointCounters struct {
	SolveCached          int64 `json:"solve_cached"`
	SolveUncached        int64 `json:"solve_uncached"`
	BatchEntriesCached   int64 `json:"batch_entries_cached"`
	BatchEntriesUncached int64 `json:"batch_entries_uncached"`
	AdmitCached          int64 `json:"admit_cached"`
	AdmitUncached        int64 `json:"admit_uncached"`
}

type histogramSnapshot struct {
	Count     int64           `json:"count"`
	MeanMS    float64         `json:"mean_ms"`
	BucketsMS []bucketSample  `json:"buckets_ms"`
}

type bucketSample struct {
	LE    string `json:"le"` // bucket upper bound in ms; "+Inf" for the last
	Count int64  `json:"count"`
}

// snapshot renders the current counters.
func (m *metrics) snapshot(cacheEntries, sessionsActive int) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		QueueDepth:    m.queueDepth.Load(),
		InFlight:      m.inFlight.Load(),
		Requests:      m.requests.Load(),
		BadRequests:   m.badRequests.Load(),
		QueueRejected: m.queueRejected.Load(),
		CacheHits:     m.cacheHits.Load(),
		RawHits:       m.rawHits.Load(),
		FrontierHits:  m.frontierHits.Load(),
		Coalesced:     m.coalesced.Load(),
		Solves:        m.solves.Load(),
		SolveErrors:   m.solveErrors.Load(),
		CacheEntries:  cacheEntries,
		BatchRequests: m.batchRequests.Load(),
		BatchEntries:  m.batchEntries.Load(),
		BatchDeduped:  m.batchDeduped.Load(),
		Endpoints: EndpointCounters{
			SolveCached:          m.solveCached.Load(),
			SolveUncached:        m.solveUncached.Load(),
			BatchEntriesCached:   m.batchCached.Load(),
			BatchEntriesUncached: m.batchUncached.Load(),
			AdmitCached:          m.admitCached.Load(),
			AdmitUncached:        m.admitUncached.Load(),
		},
		ForwardedIn: m.forwardedIn.Load(),
		AdmitRequests:    m.admitRequests.Load(),
		AdmitAccepted:    m.admitAccepted.Load(),
		AdmitRejected:    m.admitRejected.Load(),
		AdmitSearchSteps: m.admitSearchSteps.Load(),

		Shed:          m.shed.Load(),
		Abandoned:     m.abandoned.Load(),
		Degraded:      m.degraded.Load(),
		ExactRes:      m.exactRes.Load(),

		SessionsActive:  sessionsActive,
		SessionsCreated: m.sessionsCreated.Load(),
		SessionsEvicted: m.sessionsEvicted.Load(),
		Patches:         m.patches.Load(),
		PatchesRejected: m.patchesRejected.Load(),
		SSEFrames:       m.sseFrames.Load(),
		SSEDropped:      m.sseDropped.Load(),

		JobsSubmitted:     m.jobsSubmitted.Load(),
		JobsCanceled:      m.jobsCanceled.Load(),
		JobsDone:          m.jobsDone.Load(),
		JobsFailed:        m.jobsFailed.Load(),
		JobsCanceledFinal: m.jobsCanceledFinal.Load(),
	}
	served := s.CacheHits + s.FrontierHits + s.Coalesced + s.Solves
	if served > 0 {
		s.CacheHitRate = float64(s.CacheHits+s.FrontierHits) / float64(served)
	}
	s.SolveLatency.Count = m.latCount.Load()
	if s.SolveLatency.Count > 0 {
		s.SolveLatency.MeanMS = float64(m.latSumUS.Load()) / 1000 / float64(s.SolveLatency.Count)
	}
	for i := range m.latHist {
		le := "+Inf"
		if i < len(latencyBucketsMS) {
			le = strconv.FormatFloat(latencyBucketsMS[i], 'f', -1, 64)
		}
		s.SolveLatency.BucketsMS = append(s.SolveLatency.BucketsMS, bucketSample{LE: le, Count: m.latHist[i].Load()})
	}
	return s
}

