package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPinBalance is the pin-leak test behind the pinpair analyzer: after a
// workload that exercises every acquire/putAcquired site — the frontier
// fast path, concurrent deadline sweeps, and batch groups that pin the
// shared FrontierSolver — every shard's pin refcount must be back to zero
// at shutdown. A nonzero count means some path out of frontierSolve or
// runBatchGroup dropped its release, which would slowly wedge eviction.
func TestPinBalance(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Frontier path: deadline-form tree solves build and pin a
	// FrontierSolver; repeats and nearby deadlines hit and re-pin it.
	code, m := postJSON(t, ts, "POST", "/v1/solve", `{"bench":"volterra","seed":1,"deadline":40}`)
	if code != 200 {
		t.Fatalf("warmup solve: status %d: %v", code, m)
	}

	// Concurrent sweep over two instances so distinct shards see pins.
	var wg sync.WaitGroup
	for seed := 1; seed <= 2; seed++ {
		for d := 36; d <= 44; d++ {
			wg.Add(1)
			go func(seed, d int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"bench":"volterra","seed":%d,"deadline":%d}`, seed, d)
				resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}(seed, d)
		}
	}
	wg.Wait()

	// Batch path: a same-instance sweep group acquires the solver pin up
	// front and must release it when the group finishes.
	code, m = postJSON(t, ts, "POST", "/v1/solve-batch", batchBody(
		`{"bench":"volterra","seed":3,"deadline":40}`,
		`{"bench":"volterra","seed":3,"deadline":41}`,
		`{"bench":"volterra","seed":3,"deadline":42}`,
		`{"bench":"diffeq","seed":4,"slack":4}`,
	))
	if code != 200 {
		t.Fatalf("batch solve: status %d: %v", code, m)
	}

	// Session path: a session on a frontier-warmed tree instance pins the
	// cached curve for its lifetime; a row patch moves the session off the
	// warmed digest (releasing the pin), and eviction — explicit or at
	// shutdown — must put every refcount back.
	code, m = postJSON(t, ts, "PUT", "/v1/instances/pins", `{"bench":"volterra","seed":1,"deadline":40}`)
	if code != 201 {
		t.Fatalf("session PUT: status %d: %v", code, m)
	}
	pinned := 0
	for _, p := range s.cache.pinnedByShard() {
		pinned += p
	}
	if pinned == 0 {
		t.Fatal("session on a warmed frontier instance holds no pin")
	}
	code, m = postJSON(t, ts, "PATCH", "/v1/instances/pins",
		`{"ops":[{"op":"set_row","node":0,"time":[1,2,3],"cost":[9,5,1]}]}`)
	if code != 200 {
		t.Fatalf("session PATCH: status %d: %v", code, m)
	}
	if code, _ = postJSON(t, ts, "DELETE", "/v1/instances/pins", ""); code != 200 {
		t.Fatalf("session DELETE: status %d", code)
	}
	// A second session left live rides shutdown's eviction path instead.
	if code, m = postJSON(t, ts, "PUT", "/v1/instances/pins2", `{"bench":"volterra","seed":1,"deadline":40}`); code != 201 {
		t.Fatalf("second session PUT: status %d: %v", code, m)
	}

	ts.Close()
	s.Close()

	for i, pins := range s.cache.pinnedByShard() {
		if pins != 0 {
			t.Errorf("result cache shard %d: %d pin(s) leaked at shutdown", i, pins)
		}
	}
	for i, pins := range s.rawCache.pinnedByShard() {
		if pins != 0 {
			t.Errorf("raw cache shard %d: %d pin(s) leaked at shutdown", i, pins)
		}
	}
}
