package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// errQueueFull rejects a submission when the FIFO queue is at capacity —
// the server's admission control: better an immediate 503 than an unbounded
// backlog of heavy solves.
var errQueueFull = errors.New("server: job queue full")

// errDraining rejects submissions once shutdown has begun.
var errDraining = errors.New("server: draining, not accepting work")

// task is one unit of pool work. run is executed on a worker with the
// task's context; done is closed by the worker when run has returned (or
// when the task was skipped because its context was already dead).
type task struct {
	ctx  context.Context
	run  func(ctx context.Context)
	done chan struct{}
}

// pool is a bounded FIFO worker pool: a buffered channel is the queue
// (capacity = admission bound) and a fixed set of workers drains it in
// submission order. Cancellation is cooperative — a task whose context dies
// while queued is skipped, and running tasks see the cancellation through
// the context handed to run.
type pool struct {
	mu     sync.RWMutex // serializes queue close vs. concurrent submit
	queue  chan *task   // send under mu.RLock, close under mu.Lock; workers receive lock-free
	wg     sync.WaitGroup
	met    *metrics
	closed bool // guarded by mu
}

func newPool(workers, depth int, met *metrics) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &pool{queue: make(chan *task, depth), met: met}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// submit enqueues a task without blocking. It fails with errQueueFull when
// the queue is at capacity and errDraining after drain has begun.
func (p *pool) submit(t *task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.queue <- t:
		p.met.queueDepth.Add(1)
		return nil
	default:
		p.met.queueRejected.Add(1)
		return errQueueFull
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		p.met.queueDepth.Add(-1)
		if t.ctx.Err() == nil {
			p.met.inFlight.Add(1)
			t.run(t.ctx)
			p.met.inFlight.Add(-1)
		}
		close(t.done)
	}
}

// drain stops admission and waits until every accepted task — queued and
// in-flight — has completed. It is idempotent.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Job lifecycle states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// Job is one asynchronous solve or admission. All mutable fields are
// guarded by mu; the HTTP layer reads them through view(). result holds the
// endpoint's payload type (*SolveResult for solves, *AdmitResult for
// admissions) behind any, so one store and one lifecycle serve both.
type Job struct {
	ID string

	mu       sync.Mutex
	status   string // guarded by mu
	source   string // guarded by mu
	result   any    // guarded by mu; *SolveResult or *AdmitResult, nil until done
	errMsg   string       // guarded by mu
	errCode  int          // guarded by mu; HTTP status a sync caller would have received
	created  time.Time    // guarded by mu
	started  time.Time    // guarded by mu
	finished time.Time    // guarded by mu

	cancel context.CancelFunc // guarded by mu
	done   chan struct{}      // immutable after creation; closed exactly once by finish
}

// JobView is the wire form of a job's state.
type JobView struct {
	ID       string     `json:"id"`
	Status   string     `json:"status"`
	Source   string     `json:"source,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Result   any        `json:"result,omitempty"`
}

func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Status:  j.status,
		Source:  j.source,
		Error:   j.errMsg,
		Created: j.created,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

func (j *Job) setRunning() {
	j.mu.Lock()
	if j.status == JobQueued {
		j.status = JobRunning
		j.started = time.Now()
	}
	j.mu.Unlock()
}

// finish records the outcome exactly once and releases waiters. It reports
// whether this call performed the transition; false means the job had already
// reached a terminal state and nothing changed, so callers can keep terminal
// counters exact even when a worker and a janitor race to settle the same job.
func (j *Job) finish(status, source string, res any, errMsg string, errCode int) bool {
	j.mu.Lock()
	if j.status == JobDone || j.status == JobFailed || j.status == JobCanceled {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.source = source
	j.result = res
	j.errMsg = errMsg
	j.errCode = errCode
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
	return true
}

// jobStore tracks jobs by ID and bounds how many finished jobs are retained.
type jobStore struct {
	mu     sync.Mutex
	jobs   map[string]*Job // guarded by mu
	order  []string        // guarded by mu; insertion order, for retention pruning
	retain int             // immutable after creation
}

func newJobStore(retain int) *jobStore {
	if retain < 1 {
		retain = 1
	}
	return &jobStore{jobs: make(map[string]*Job), retain: retain}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for ID uniqueness; fall back
		// to time, which is fine for a single process.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))
	}
	return hex.EncodeToString(b[:])
}

func (s *jobStore) add(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	// Prune oldest *finished* jobs beyond the retention cap; live jobs are
	// never dropped.
	for len(s.jobs) > s.retain {
		pruned := false
		for i, id := range s.order {
			if old, ok := s.jobs[id]; ok {
				old.mu.Lock()
				finished := old.status == JobDone || old.status == JobFailed || old.status == JobCanceled
				old.mu.Unlock()
				if finished {
					delete(s.jobs, id)
					s.order = append(s.order[:i], s.order[i+1:]...)
					pruned = true
					break
				}
			} else {
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break
		}
	}
}

func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns a snapshot of all tracked jobs, oldest first.
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}
