package server

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestPoolRunsAllSubmittedTasks(t *testing.T) {
	p := newPool(4, 64, newMetrics())
	var ran atomic.Int64
	var tasks []*task
	for i := 0; i < 32; i++ {
		tk := &task{
			ctx:  context.Background(),
			done: make(chan struct{}),
			run:  func(ctx context.Context) { ran.Add(1) },
		}
		if err := p.submit(tk); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tasks = append(tasks, tk)
	}
	for _, tk := range tasks {
		<-tk.done
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d tasks, want 32", ran.Load())
	}
	p.drain()
}

func TestPoolQueueFull(t *testing.T) {
	p := newPool(1, 1, newMetrics())
	block := make(chan struct{})
	started := make(chan struct{})
	first := &task{ctx: context.Background(), done: make(chan struct{}),
		run: func(ctx context.Context) { close(started); <-block }}
	if err := p.submit(first); err != nil {
		t.Fatal(err)
	}
	<-started
	second := &task{ctx: context.Background(), done: make(chan struct{}), run: func(ctx context.Context) {}}
	if err := p.submit(second); err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	third := &task{ctx: context.Background(), done: make(chan struct{}), run: func(ctx context.Context) {}}
	if err := p.submit(third); err != errQueueFull {
		t.Fatalf("over-capacity submit: %v, want errQueueFull", err)
	}
	close(block)
	<-first.done
	<-second.done
	p.drain()
}

func TestPoolSkipsDeadTasks(t *testing.T) {
	p := newPool(1, 4, newMetrics())
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.submit(&task{ctx: context.Background(), done: make(chan struct{}),
		run: func(ctx context.Context) { close(started); <-block }}); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	dead := &task{ctx: ctx, done: make(chan struct{}), run: func(ctx context.Context) { ran.Store(true) }}
	if err := p.submit(dead); err != nil {
		t.Fatal(err)
	}
	cancel() // dies while queued
	close(block)
	<-dead.done
	if ran.Load() {
		t.Fatal("pool ran a task whose context was already dead")
	}
	p.drain()
}

func TestPoolDrainWaitsAndRejects(t *testing.T) {
	p := newPool(2, 8, newMetrics())
	block := make(chan struct{})
	var done atomic.Int64
	for i := 0; i < 4; i++ {
		if err := p.submit(&task{ctx: context.Background(), done: make(chan struct{}),
			run: func(ctx context.Context) { <-block; done.Add(1) }}); err != nil {
			t.Fatal(err)
		}
	}
	drained := make(chan struct{})
	go func() { p.drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("drain returned with tasks still blocked")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
	if done.Load() != 4 {
		t.Fatalf("drain completed with %d/4 tasks done", done.Load())
	}
	if err := p.submit(&task{ctx: context.Background(), done: make(chan struct{}), run: func(ctx context.Context) {}}); err != errDraining {
		t.Fatalf("post-drain submit: %v, want errDraining", err)
	}
	p.drain() // idempotent
}

// TestPoolSubmitDrainRace hammers submit against drain; under -race this
// proves the closed-channel guard is sound.
func TestPoolSubmitDrainRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := newPool(2, 16, newMetrics())
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					_ = p.submit(&task{ctx: context.Background(), done: make(chan struct{}), run: func(ctx context.Context) {}})
				}
			}()
		}
		p.drain()
		wg.Wait()
	}
}

func TestJobStoreRetention(t *testing.T) {
	s := newJobStore(2)
	mk := func(status string) *Job {
		j := &Job{ID: newJobID(), status: status, created: time.Now(), done: make(chan struct{})}
		s.add(j)
		return j
	}
	a := mk(JobDone)
	live := mk(JobRunning)
	mk(JobDone)
	mk(JobDone)
	if _, ok := s.get(a.ID); ok {
		t.Fatal("oldest finished job survived retention pruning")
	}
	if _, ok := s.get(live.ID); !ok {
		t.Fatal("live job was pruned")
	}
	if got := len(s.list()); got < 2 {
		t.Fatalf("list lost entries: %d", got)
	}
}

func TestJobFinishExactlyOnce(t *testing.T) {
	j := &Job{ID: "x", status: JobQueued, created: time.Now(), done: make(chan struct{})}
	j.finish(JobDone, "solve", &SolveResult{Cost: 1}, "", 0)
	j.finish(JobFailed, "", nil, "late", 500) // must be ignored
	v := j.view()
	if v.Status != JobDone || v.Error != "" || v.Result == nil {
		t.Fatalf("second finish overwrote the first: %+v", v)
	}
	select {
	case <-j.done:
	default:
		t.Fatal("done channel not closed")
	}
}
