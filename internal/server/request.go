package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/canon"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// maxBodyBytes bounds a request body; a graph big enough to exceed this is
// far past what the solvers handle interactively anyway.
const maxBodyBytes = 8 << 20

// maxDeadline caps client-supplied deadlines and slacks; DP horizons and
// path sums stay far away from integer overflow below it.
const maxDeadline = 1<<31 - 1

// maxTableEntry caps inline table times and costs (~1.1e12): with at most
// maxBodyBytes/8 entries, no longest-path or cost sum can overflow int64.
const maxTableEntry = 1 << 40

// DeadlineHeader is the request header carrying the per-request compute
// deadline in milliseconds. It bounds how long the server may spend solving
// (queue wait included); the effective budget is min(header, body
// timeout_ms, server max). Responses echo the degradation outcome in the
// QualityHeader.
const DeadlineHeader = "X-Hetsynth-Deadline-Ms"

// QualityHeader is the response header mirroring the result's quality field
// ("exact", "heuristic" or "timeout"), so load balancers and clients can
// spot degraded answers without parsing the body.
const QualityHeader = "X-Hetsynth-Quality"

// ForwardedHeader marks a request relayed by a cluster router
// (cmd/hetsynthrouter). Nodes count these under forwarded_in in /metrics, so
// an operator can read the share of a node's traffic arriving via affinity
// routing; the value is the router's identity and is otherwise uninterpreted.
const ForwardedHeader = "X-Hetsynth-Forwarded"

// PeerzSnapshot is the JSON body of GET /v1/peerz — the lightweight
// health/load summary cluster peers exchange. The router maps Status
// "draining" to a weight reduction exactly like a 429, so a node being shut
// down sheds its keys to ring successors before its listener closes.
type PeerzSnapshot struct {
	Status       string  `json:"status"` // "ok" or "draining"
	Workers      int     `json:"workers"`
	QueueDepth   int64   `json:"queue_depth"`
	InFlight     int64   `json:"in_flight"`
	MeanSolveMS  float64 `json:"mean_solve_ms"`
	CacheEntries int     `json:"cache_entries"`
	Sessions     int     `json:"sessions"`
}

// SolveRequest is the JSON body of POST /v1/solve and POST /v1/jobs.
//
// The graph comes from exactly one of:
//   - "graph": an inline DFG in the repository's JSON graph format
//     ({"nodes":[{"name","op"}],"edges":[{"from","to","delays"}]});
//   - "bench": a bundled benchmark name (see GET /v1/benchmarks).
//
// The time/cost table comes from exactly one of:
//   - "table": inline per-node rows, {"time":[[...]],"cost":[[...]]};
//   - "catalog": a named FU catalog, rows derived from node op classes;
//   - "seed": a paper-style random table ("types" selects K, default 3).
//
// The deadline comes from "deadline" (absolute control steps) or "slack"
// (steps above the instance's minimum makespan — the natural way to sweep a
// design space without knowing absolute path lengths).
type SolveRequest struct {
	Graph json.RawMessage `json:"graph,omitempty"`
	Bench string          `json:"bench,omitempty"`

	Table   *TablePayload `json:"table,omitempty"`
	Catalog string        `json:"catalog,omitempty"`
	Seed    *int64        `json:"seed,omitempty"`
	Types   int           `json:"types,omitempty"`

	Deadline int  `json:"deadline,omitempty"`
	Slack    *int `json:"slack,omitempty"`

	Algorithm string `json:"algorithm,omitempty"` // default "auto"
	Schedule  bool   `json:"schedule,omitempty"`  // also run phase 2
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// TablePayload is the inline table wire form.
type TablePayload struct {
	Time [][]int   `json:"time"`
	Cost [][]int64 `json:"cost"`
}

// SolveResult is the cacheable outcome of one solve (everything but the
// per-response source annotation).
//
// Quality reports how good the answer provably is: "exact" (proven
// optimal), "heuristic" (completed heuristic, no optimality proof), or
// "timeout" (best feasible incumbent when the compute deadline expired).
// Degraded ("timeout") and anytime results also carry Gap — the relative
// optimality gap (cost − lower_bound)/max(lower_bound, 1), always finite —
// and the proven LowerBound itself; Stage names the ladder rung that
// produced the assignment.
type SolveResult struct {
	Algorithm  string                 `json:"algorithm"`
	Deadline   int                    `json:"deadline"`
	Cost       int64                  `json:"cost"`
	Length     int                    `json:"length"`
	Assignment []int                  `json:"assignment"`
	Quality    string                 `json:"quality,omitempty"`
	Gap        *float64               `json:"gap,omitempty"`
	LowerBound *int64                 `json:"lower_bound,omitempty"`
	Stage      string                 `json:"stage,omitempty"`
	Frontier   []FrontierPointPayload `json:"frontier,omitempty"`
	Schedule   *SchedulePayload       `json:"schedule,omitempty"`
	ElapsedMS  float64                `json:"elapsed_ms"`
}

// FrontierPointPayload is one (deadline, cost) breakpoint of a tree
// instance's cost/deadline tradeoff curve, included for tree-shaped solves.
type FrontierPointPayload struct {
	Deadline int   `json:"deadline"`
	Cost     int64 `json:"cost"`
}

// SchedulePayload is the phase-2 result wire form.
type SchedulePayload struct {
	Start    []int `json:"start"`    // 1-based control step per node
	Instance []int `json:"instance"` // FU instance within its type
	Length   int   `json:"length"`
	Config   []int `json:"config"` // FU instances per type
}

// SolveResponse is SolveResult plus how the answer was produced.
type SolveResponse struct {
	Source string `json:"source"` // "solve", "cache", "frontier" or "coalesced"
	SolveResult
}

// apiError carries an HTTP status with a client-facing message.
// RetryAfter, when positive, is surfaced as a Retry-After header (seconds)
// — set on 429 load-shed rejections so clients back off instead of
// hammering a saturated pool.
type apiError struct {
	Status     int
	Msg        string
	RetryAfter int
}

func (e *apiError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: 400, Msg: fmt.Sprintf(format, args...)}
}

// solveSpec is a fully resolved request: concrete problem, canonical keys.
type solveSpec struct {
	prob     hap.Problem
	algo     hap.Algorithm
	algoName string
	schedule bool
	timeout  int // milliseconds; 0 = server default

	key     string // result-cache / single-flight key
	instKey string // deadline-independent instance key (frontier cache)
	tree    bool   // frontier fast path applies
	anytime bool   // solve through the anytime ladder, report quality + gap
}

// decodeSolveRequest parses and resolves a request body into a solveSpec.
// Every failure is a *apiError with status 400, so handlers can surface
// malformed inputs uniformly.
func decodeSolveRequest(r io.Reader) (*solveSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid request JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after request object")
	}
	return resolve(&req)
}

// decodeSolveRequestBytes is decodeSolveRequest over an in-memory body the
// caller has already size-checked (readBody enforces maxBodyBytes).
func decodeSolveRequestBytes(b []byte) (*solveSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid request JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after request object")
	}
	return resolve(&req)
}

// ResolveInstance materializes the problem instance a request describes —
// graph and table only, deadline and algorithm ignored. It exists for the
// cluster router (internal/cluster), whose routing key is the
// deadline-independent canonical instance digest of exactly this pair; going
// through the same resolution code as the node guarantees the router and the
// node derive identical digests for every JSON body.
func ResolveInstance(req *SolveRequest) (*dfg.Graph, *fu.Table, error) {
	g, err := resolveGraph(req)
	if err != nil {
		return nil, nil, err
	}
	tab, err := resolveTable(req, g)
	if err != nil {
		return nil, nil, err
	}
	return g, tab, nil
}

// resolve turns the wire request into a concrete problem and canonical keys.
func resolve(req *SolveRequest) (*solveSpec, error) {
	g, err := resolveGraph(req)
	if err != nil {
		return nil, err
	}
	tab, err := resolveTable(req, g)
	if err != nil {
		return nil, err
	}
	return resolveWith(g, tab, req, nil)
}

// resolveWith finishes resolution for an already-materialized graph and
// table: deadline/slack arithmetic, validation, canonical keys, fast-path
// flags. instEnc, when non-nil, must be the canonical instance encoding of
// (g, tab); the keys are then digested straight from those bytes
// (canon.KeysEncoded) instead of re-encoding the problem — this is how the
// binary wire path skips the canonicalize re-marshal.
func resolveWith(g *dfg.Graph, tab *fu.Table, req *SolveRequest, instEnc []byte) (*solveSpec, error) {
	algoName := req.Algorithm
	if algoName == "" {
		algoName = "auto"
	}
	algo, err := hap.ParseAlgorithm(algoName)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	deadline := req.Deadline
	if deadline < 0 {
		return nil, badRequest("negative deadline %d", deadline)
	}
	switch {
	case deadline > 0 && req.Slack != nil:
		return nil, badRequest("use either deadline or slack, not both")
	case deadline > 0:
	case req.Slack != nil:
		if *req.Slack < 0 {
			return nil, badRequest("negative slack %d", *req.Slack)
		}
		if *req.Slack > maxDeadline {
			return nil, badRequest("slack %d exceeds the supported maximum %d", *req.Slack, maxDeadline)
		}
		min, err := hap.MinMakespan(g, tab)
		if err != nil {
			return nil, badRequest("cannot derive deadline: %v", err)
		}
		deadline = min + *req.Slack
	default:
		return nil, badRequest("deadline (or slack) is required")
	}
	if deadline > maxDeadline {
		return nil, badRequest("deadline %d exceeds the supported maximum %d", deadline, maxDeadline)
	}
	if req.TimeoutMS < 0 {
		return nil, badRequest("negative timeout_ms %d", req.TimeoutMS)
	}

	p := hap.Problem{Graph: g, Table: tab, Deadline: deadline}
	if err := p.Validate(); err != nil {
		return nil, badRequest("invalid problem: %v", err)
	}

	spec := &solveSpec{
		prob:     p,
		algo:     algo,
		algoName: algoName,
		schedule: req.Schedule,
		timeout:  req.TimeoutMS,
	}
	if instEnc != nil {
		spec.key, spec.instKey = canon.KeysEncoded(instEnc, deadline, algoName)
	} else {
		spec.key, spec.instKey = canon.Keys(g, tab, deadline, algoName)
	}
	spec.instKey = "inst/" + spec.instKey
	// The frontier fast path serves only the algorithms for which the tree
	// DP *is* the answer: auto (which dispatches trees to Tree_Assign),
	// tree, and anytime (whose ladder short-circuits forests to the same
	// optimal DP). Heuristics like once/repeat coincide with the optimum on
	// trees by the paper's Theorem, but may return different assignments,
	// and greedy/exact have their own contracts — those always solve.
	if algoName == "auto" || algoName == "tree" || algoName == "anytime" {
		spec.tree = g.IsOutForest() || g.IsInForest()
	}
	spec.anytime = algoName == "anytime"
	return spec, nil
}

func resolveGraph(req *SolveRequest) (*dfg.Graph, error) {
	switch {
	case len(req.Graph) > 0 && req.Bench != "":
		return nil, badRequest("use either graph or bench, not both")
	case len(req.Graph) > 0:
		g := dfg.New()
		if err := g.UnmarshalJSON(req.Graph); err != nil {
			return nil, badRequest("invalid graph: %v", err)
		}
		if g.N() == 0 {
			return nil, badRequest("invalid graph: no nodes")
		}
		return g, nil
	case req.Bench != "":
		b, ok := benchdfg.Lookup(req.Bench)
		if !ok {
			return nil, badRequest("unknown benchmark %q (known: %s)", req.Bench, strings.Join(benchdfg.Names(), ", "))
		}
		return b.Build(), nil
	default:
		return nil, badRequest("a graph is required: set graph or bench")
	}
}

func resolveTable(req *SolveRequest, g *dfg.Graph) (*fu.Table, error) {
	sources := 0
	if req.Table != nil {
		sources++
	}
	if req.Catalog != "" {
		sources++
	}
	if req.Seed != nil {
		sources++
	}
	if sources > 1 {
		return nil, badRequest("use exactly one of table, catalog or seed")
	}
	switch {
	case req.Table != nil:
		if len(req.Table.Time) != g.N() || len(req.Table.Cost) != g.N() {
			return nil, badRequest("table covers %d/%d nodes, graph has %d",
				len(req.Table.Time), len(req.Table.Cost), g.N())
		}
		k := 0
		if g.N() > 0 {
			k = len(req.Table.Time[0])
		}
		tab := fu.NewTable(g.N(), k)
		for v := 0; v < g.N(); v++ {
			if len(req.Table.Time[v]) != k || len(req.Table.Cost[v]) != k {
				return nil, badRequest("ragged table row %d", v)
			}
			for j := 0; j < k; j++ {
				if req.Table.Time[v][j] > maxTableEntry || req.Table.Cost[v][j] > maxTableEntry {
					return nil, badRequest("table entry at node %d exceeds the supported maximum %d", v, int64(maxTableEntry))
				}
			}
			if err := tab.Set(v, req.Table.Time[v], req.Table.Cost[v]); err != nil {
				return nil, badRequest("invalid table: %v", err)
			}
		}
		if err := tab.Validate(); err != nil {
			return nil, badRequest("invalid table: %v", err)
		}
		return tab, nil
	case req.Catalog != "":
		cat, err := fu.LookupCatalog(req.Catalog)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		tab, err := cat.TableFor(g.N(), func(v int) string { return g.Node(dfg.NodeID(v)).Op })
		if err != nil {
			return nil, badRequest("catalog %q cannot cover this graph: %v", req.Catalog, err)
		}
		return tab, nil
	case req.Seed != nil:
		types := req.Types
		if types == 0 {
			types = 3
		}
		if types < 1 || types > 16 {
			return nil, badRequest("types must be in [1,16], got %d", types)
		}
		return fu.RandomTable(rand.New(rand.NewSource(*req.Seed)), g.N(), types), nil
	default:
		return nil, badRequest("a table is required: set table, catalog or seed")
	}
}

// applyComputeDeadline folds the X-Hetsynth-Deadline-Ms request header into
// the spec's compute budget: when present it must be a positive integer
// millisecond count, and the effective timeout becomes the minimum of the
// header and any body timeout_ms (the server-side cap still applies on top).
// A malformed header is a 400 — silently ignoring it would let a client
// believe a deadline is being honored when it is not.
func applyComputeDeadline(spec *solveSpec, r *http.Request) *apiError {
	ms, aerr := computeDeadlineMS(r)
	if aerr != nil {
		return aerr
	}
	if ms > 0 && (spec.timeout == 0 || ms < spec.timeout) {
		spec.timeout = ms
	}
	return nil
}

// computeDeadlineMS parses the DeadlineHeader: 0 when absent, the positive
// millisecond count when well-formed, a 400 apiError otherwise.
func computeDeadlineMS(r *http.Request) (int, *apiError) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || ms <= 0 {
		return 0, badRequest("invalid %s header %q: want a positive integer millisecond count", DeadlineHeader, h)
	}
	return ms, nil
}

// classifySolveErr maps solver errors onto HTTP statuses: infeasible and
// oversized instances are unprocessable (the request was well-formed), shape
// errors are the client picking the wrong algorithm (400), timeouts are 504,
// cancellations 499 (client closed request, nginx-style), anything else 500.
func classifySolveErr(err error) *apiError {
	switch {
	case errors.Is(err, hap.ErrInfeasible):
		return &apiError{Status: 422, Msg: "infeasible: no assignment meets the timing constraint"}
	case errors.Is(err, hap.ErrShape):
		return &apiError{Status: 400, Msg: err.Error()}
	case errors.Is(err, hap.ErrSearchTooLarge):
		return &apiError{Status: 422, Msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: 504, Msg: "solve exceeded its time budget"}
	case errors.Is(err, context.Canceled):
		return &apiError{Status: 499, Msg: "solve canceled"}
	default:
		return &apiError{Status: 500, Msg: err.Error()}
	}
}
