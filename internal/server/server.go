// Package server implements hetsynthd, an HTTP/JSON synthesis service over
// the repository's assignment and scheduling solvers.
//
// Request flow for a solve (sync or async):
//
//	decode ──▶ result cache ──▶ frontier fast path ──▶ join in-flight ──▶ pool
//	              (hit: no         (tree instance,        (coalesce on      (bounded FIFO
//	               pool touch)      cached curve)          same digest)      queue, N workers)
//
// The result cache and the frontier cache share one LRU keyed by canonical
// SHA-256 digests (package canon): a full request digest (graph + table +
// deadline + algorithm) maps to a finished SolveResult, and a
// deadline-independent instance digest maps to a hap.FrontierSolver whose
// cost/deadline curve answers *any* covered deadline for that instance
// without re-running the DP. Identical requests that race are collapsed to a
// single solver execution by a single-flight group keyed by the request
// digest; followers never occupy pool workers.
package server

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

// Config tunes a Server. Zero values select sensible defaults.
type Config struct {
	Workers      int // solver pool size; default GOMAXPROCS
	QueueDepth   int // FIFO admission bound; default 64
	CacheSize    int // LRU entries (results + frontiers); default 256
	CacheShards  int // cache shard count, rounded up to a power of two; default 16
	JobRetention int // finished async jobs kept for polling; default 256

	DefaultTimeout time.Duration // per-solve budget when the request sets none; default 30s
	MaxTimeout     time.Duration // upper clamp on requested budgets; default 120s

	SessionTTL         time.Duration // idle lifetime of a stateful session; default 10m
	SessionMax         int           // live session cap (LRU-evicted beyond it); default 64
	SessionEventBuffer int           // per-subscriber SSE mailbox depth; default 32

	Logger *slog.Logger // default: discard
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheSize < 1 {
		c.CacheSize = 256
	}
	if c.CacheShards < 1 {
		c.CacheShards = 16
	}
	if c.JobRetention < 1 {
		c.JobRetention = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.SessionMax < 1 {
		c.SessionMax = 64
	}
	if c.SessionEventBuffer < 1 {
		c.SessionEventBuffer = 32
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the hetsynthd service: a worker pool, a shared LRU over results
// and frontier solvers, a single-flight group, and an async job store.
type Server struct {
	cfg     Config
	log     *slog.Logger
	noLog   bool // no Logger configured: skip the request-log wrapper entirely
	met     *metrics
	cache   *shardedCache
	// rawCache maps verbatim request bodies of POST /v1/solve to their fully
	// encoded responses (rawEntry, one body per wire codec), so a repeated
	// identical body is served without decoding, resolution or digesting. Its own
	// eviction domain: raw bodies are bulkier and strictly redundant with the
	// digest-keyed result cache, so pressure here never evicts a frontier.
	rawCache *shardedCache
	flights  *flightGroup
	pool     *pool
	jobs     *jobStore

	// sessions holds the stateful instances of PUT /v1/instances/{id}; sessWG
	// joins the TTL janitor goroutine at shutdown.
	sessions *sessionStore
	sessWG   sync.WaitGroup

	// baseCtx parents every solver execution, so solves survive client
	// disconnects (the result still lands in the cache) and are only torn
	// down when the server itself shuts down after draining.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool

	// preSolve, when set, runs at the start of every real solver or
	// admission-analysis execution.
	// It exists for package tests that need a solve to block deterministically
	// (e.g. to prove concurrent duplicates coalesce onto one execution).
	preSolve func(ctx context.Context)
}

// New builds a Server ready to serve; callers own shutdown via Run or Close.
func New(cfg Config) *Server {
	noLog := cfg.Logger == nil
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		noLog:    noLog,
		met:      newMetrics(),
		cache:    newShardedCache(cfg.CacheSize, cfg.CacheShards),
		rawCache: newShardedCache(cfg.CacheSize, cfg.CacheShards),
		flights:  newFlightGroup(),
		jobs:     newJobStore(cfg.JobRetention),
		sessions: newSessionStore(),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.met)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.sessWG.Add(1)
	go func() {
		defer s.sessWG.Done()
		s.sessionJanitor()
	}()
	return s
}

// Handler returns the server's HTTP routes wrapped in request logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/solve-batch", s.handleSolveBatch)
	mux.HandleFunc("POST /v1/admit", s.handleAdmit)
	mux.HandleFunc("POST /v1/admit/jobs", s.handleAdmitJobSubmit)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("PUT /v1/instances/{id}", s.handleSessionPut)
	mux.HandleFunc("PATCH /v1/instances/{id}", s.handleSessionPatch)
	mux.HandleFunc("GET /v1/instances/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/instances/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/instances/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/peerz", s.handlePeerz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logged(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) != "" {
			s.met.forwardedIn.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
}

// Run serves on ln until ctx is cancelled, then drains: admission stops
// (healthz reports draining, new work gets 503), in-flight HTTP requests and
// queued jobs run to completion, and only then do solver contexts die.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.InfoContext(ctx, "draining", "queue_depth", s.met.queueDepth.Load(), "in_flight", s.met.inFlight.Load())
	s.draining.Store(true)
	// Evict sessions before Shutdown: eviction closes every SSE stream, so
	// Shutdown's wait for in-flight handlers is not parked behind open
	// event streams.
	s.evictAllSessions("shutdown")
	// Shutdown stops new connections and waits for in-flight handlers; the
	// handlers in turn wait for their pool tasks, so the pool must still be
	// alive here. Drain the pool after, then tear down solver contexts.
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxTimeout)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	s.pool.drain()
	s.baseCancel()
	s.sessWG.Wait()
	s.log.InfoContext(ctx, "drained")
	return err
}

// Close drains the server without a listener (tests, embedded use).
func (s *Server) Close() {
	s.draining.Store(true)
	s.evictAllSessions("shutdown")
	s.pool.drain()
	s.baseCancel()
	s.sessWG.Wait()
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics returns a point-in-time snapshot of the operational counters.
func (s *Server) Metrics() MetricsSnapshot { return s.met.snapshot(s.cache.len(), s.sessions.len()) }

// ---- solve pipeline ----

// abandonGrace bounds how long a sync handler keeps waiting after the solve
// budget has already expired: enough for a cooperative solver to observe the
// cancellation and surface a partial result, short enough that a client is
// never parked behind a worker that will not yield.
const abandonGrace = 500 * time.Millisecond

// solveBudget resolves a request's per-solve time budget.
func (s *Server) solveBudget(spec *solveSpec) time.Duration {
	d := s.cfg.DefaultTimeout
	if spec.timeout > 0 {
		d = time.Duration(spec.timeout) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// estimatedQueueWait predicts how long a newly queued task sits before a
// worker picks it up: queue depth over pool width, times the observed mean
// solve latency. Zero before any solve has completed — with no data the
// server admits optimistically and lets the queue bound do its job.
func (s *Server) estimatedQueueWait() time.Duration {
	mean := s.met.meanSolve()
	if mean == 0 {
		return 0
	}
	return time.Duration(s.met.queueDepth.Load()/int64(s.cfg.Workers)) * mean
}

// retryAfterSeconds turns the queue-wait estimate into a Retry-After hint,
// clamped to [1, 30] seconds (at least 1 even when the estimate is cold, so
// shed clients always back off a little).
func (s *Server) retryAfterSeconds() int {
	sec := int(s.estimatedQueueWait() / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// tryFast answers a request without touching the worker pool: first the
// result cache, then — for tree instances without a phase-2 request — a
// cached frontier curve, which serves *any* covered deadline of the same
// graph+table by tracing one assignment out of the DP tables.
//
// The returned apiError is a definitive negative answer (e.g. infeasible
// read off the curve); (nil, "", nil) means "no fast answer, go solve".
func (s *Server) tryFast(spec *solveSpec) (*SolveResult, string, *apiError) {
	if v, ok := s.cache.get(spec.key); ok {
		s.met.cacheHits.Add(1)
		return v.(*SolveResult), "cache", nil
	}
	if !spec.tree || spec.schedule {
		return nil, "", nil
	}
	v, ok := s.cache.get(spec.instKey)
	if !ok {
		return nil, "", nil
	}
	fs := v.(*hap.FrontierSolver)
	sol, err := fs.SolveAt(spec.prob.Deadline)
	switch {
	case err == nil:
		res := s.buildResult(spec, sol, fs, 0)
		s.cache.put(spec.key, res)
		s.met.frontierHits.Add(1)
		return res, "frontier", nil
	case errors.Is(err, hap.ErrInfeasible):
		// The curve's first breakpoint is the instance's minimum makespan, so
		// "below the curve" is authoritative infeasibility — no solver run
		// could do better.
		s.met.frontierHits.Add(1)
		return nil, "frontier", classifySolveErr(err)
	default:
		// Beyond a truncated horizon: the full path rebuilds a wider curve.
		return nil, "", nil
	}
}

// runSolve is the body of a pool task: one more cache check (a flight keyed
// the same may have landed while this task sat in the queue), then the
// single-flight group guarantees at most one real execution per digest.
func (s *Server) runSolve(ctx context.Context, spec *solveSpec) (*SolveResult, string, error) {
	if v, ok := s.cache.get(spec.key); ok {
		s.met.cacheHits.Add(1)
		return v.(*SolveResult), "cache", nil
	}
	res, shared, err := s.flights.Do(spec.key, func() (*SolveResult, error) {
		return s.executeSolve(ctx, spec)
	})
	source := "solve"
	if shared {
		source = "coalesced"
		s.met.coalesced.Add(1)
	}
	return res, source, err
}

// executeSolve runs the actual solver (phase 1, optionally phase 2) and
// caches the outcome. For tree-shaped instances it solves through a
// FrontierSolver and caches the solver itself under the instance digest, so
// later requests that differ only in deadline are answered from the curve.
func (s *Server) executeSolve(ctx context.Context, spec *solveSpec) (*SolveResult, error) {
	if s.preSolve != nil {
		s.preSolve(ctx)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	s.met.solves.Add(1)

	var sol hap.Solution
	var fs *hap.FrontierSolver
	var anyRes *hap.AnytimeResult
	var err error
	switch {
	case spec.tree:
		// Tree shapes take the frontier DP even for anytime requests: the
		// curve is the exact answer and serves future deadlines for free.
		fs, sol, err = s.frontierSolve(spec)
	case spec.anytime:
		var ar hap.AnytimeResult
		ar, err = hap.SolveAnytime(ctx, spec.prob, hap.AnytimeOptions{})
		if err == nil {
			sol = ar.Solution
			anyRes = &ar
		}
	default:
		sol, err = hap.SolveCtx(ctx, spec.prob, spec.algo)
	}
	if err != nil {
		s.met.solveErrors.Add(1)
		return nil, err
	}

	res := s.buildResult(spec, sol, fs, time.Since(start))
	if anyRes != nil {
		res.Quality = string(anyRes.Quality)
		gap, lb := anyRes.Gap, anyRes.LowerBound
		res.Gap = &gap
		res.LowerBound = &lb
		res.Stage = anyRes.Stage
	}
	switch res.Quality {
	case string(hap.QualityTimeout):
		s.met.degraded.Add(1)
	case string(hap.QualityExact):
		s.met.exactRes.Add(1)
	}
	if spec.schedule {
		schd, conf, serr := sched.MinRSchedule(spec.prob.Graph, spec.prob.Table, sol.Assign, spec.prob.Deadline)
		if serr != nil {
			s.met.solveErrors.Add(1)
			return nil, serr
		}
		res.Schedule = &SchedulePayload{
			Start:    schd.Start,
			Instance: schd.Instance,
			Length:   schd.Length,
			Config:   conf,
		}
		res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	s.met.observeSolve(time.Since(start))
	// Timeout-quality incumbents are budget-dependent — the same request with
	// a roomier deadline deserves a fresh solve — so only settled qualities
	// enter the cache.
	if res.Quality != string(hap.QualityTimeout) {
		s.cache.put(spec.key, res)
	}
	return res, nil
}

// frontierSolve answers a tree instance through its cached frontier curve,
// building (or widening) the FrontierSolver as needed. The curve is built
// out to the instance's maximum makespan — the longest path under the
// slowest FU choice per node — beyond which every assignment is feasible, so
// the cached curve is complete and covers every future deadline. The
// solver's cache entry is pinned (eviction-exempt) for the duration of the
// call, so concurrent insertions cannot drop it between the lookup and the
// traceback; batch groups additionally hold a pin across all their entries.
func (s *Server) frontierSolve(spec *solveSpec) (*hap.FrontierSolver, hap.Solution, error) {
	var fs *hap.FrontierSolver
	pinned := false
	if v, ok := s.cache.acquire(spec.instKey); ok {
		fs = v.(*hap.FrontierSolver)
		pinned = true
	}
	if fs == nil || (!fs.Complete() && fs.Horizon() < spec.prob.Deadline) {
		horizon := spec.prob.Deadline
		wmax := make([]int, spec.prob.Graph.N())
		for v := range wmax {
			wmax[v] = spec.prob.Table.MaxTime(v)
		}
		if maxLen, _, err := spec.prob.Graph.LongestPath(wmax); err == nil && maxLen > horizon {
			horizon = maxLen
		}
		wide := spec.prob
		wide.Deadline = horizon
		built, err := hap.NewFrontierSolver(wide)
		if err != nil {
			if pinned {
				s.cache.release(spec.instKey)
			}
			return nil, hap.Solution{}, err
		}
		fs = built
		// putAcquired refreshes a pinned entry in place (keeping its pins), so
		// the balance below — exactly one release per acquire/putAcquired —
		// holds on both the fresh-build and the widen path.
		if pinned {
			s.cache.put(spec.instKey, fs)
		} else {
			s.cache.putAcquired(spec.instKey, fs)
			pinned = true
		}
	}
	sol, err := fs.SolveAt(spec.prob.Deadline)
	if pinned {
		s.cache.release(spec.instKey)
	}
	return fs, sol, err
}

// buildResult assembles the wire result for a finished phase-1 solve.
func (s *Server) buildResult(spec *solveSpec, sol hap.Solution, fs *hap.FrontierSolver, elapsed time.Duration) *SolveResult {
	res := &SolveResult{
		Algorithm:  spec.algoName,
		Deadline:   spec.prob.Deadline,
		Cost:       sol.Cost,
		Length:     sol.Length,
		Assignment: assignmentInts(sol.Assign),
		Quality:    staticQuality(spec),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	if spec.anytime && spec.tree {
		// Anytime on a tree rides the frontier DP, which is optimal: report
		// the zero gap explicitly so anytime clients always see gap fields.
		gap, lb := 0.0, sol.Cost
		res.Gap = &gap
		res.LowerBound = &lb
		res.Stage = "tree"
	}
	if fs != nil {
		for _, p := range fs.Frontier() {
			res.Frontier = append(res.Frontier, FrontierPointPayload{Deadline: p.Deadline, Cost: p.Cost})
		}
	}
	return res
}

// staticQuality classifies a completed non-anytime solve: the shape-
// restricted DPs and the branch-and-bound return proven optima, everything
// else is a heuristic without a proof. Anytime executions overwrite this
// with the ladder's own verdict (which can also be "timeout").
func staticQuality(spec *solveSpec) string {
	if spec.tree {
		return string(hap.QualityExact)
	}
	switch spec.algoName {
	case "path", "tree", "exact":
		return string(hap.QualityExact)
	case "auto":
		if spec.prob.Graph.IsSimplePath() {
			return string(hap.QualityExact)
		}
		return string(hap.QualityHeuristic)
	default:
		return string(hap.QualityHeuristic)
	}
}

func assignmentInts(a hap.Assignment) []int {
	out := make([]int, len(a))
	for i, k := range a {
		out[i] = int(k)
	}
	return out
}

// dispatch submits a unit of work to the pool and returns the task; the
// caller waits on task.done and reads whatever run wrote. A janitor
// goroutine releases the work context once the task completes (or is
// skipped), so an abandoned sync request neither cancels a shared execution
// nor leaks its context. run executes on the worker between before and
// after, so pool.drain() returning implies every accepted job has reached a
// final state.
type solveOutcome struct {
	res    *SolveResult
	source string
	err    error
}

func (s *Server) dispatch(ctx context.Context, cancel context.CancelFunc, run func(ctx context.Context), before, after func()) (*task, *apiError) {
	t := &task{
		ctx:  ctx,
		done: make(chan struct{}),
		run: func(ctx context.Context) {
			if before != nil {
				before()
			}
			run(ctx)
			if after != nil {
				after()
			}
		},
	}
	if s.draining.Load() {
		cancel()
		return nil, &apiError{Status: 503, Msg: "server is draining"}
	}
	// Predictive admission control: when every worker is busy and the queued
	// backlog is already predicted to outlast this request's compute budget,
	// shed now with a back-off hint instead of queueing a task doomed to be
	// skipped after burning its whole budget in line.
	if dl, ok := ctx.Deadline(); ok && s.met.queueDepth.Load() >= int64(s.cfg.Workers) {
		if est := s.estimatedQueueWait(); est > 0 && est > time.Until(dl) {
			cancel()
			s.met.shed.Add(1)
			return nil, &apiError{
				Status:     http.StatusTooManyRequests,
				Msg:        "overloaded: predicted queue wait exceeds the request's compute budget",
				RetryAfter: s.retryAfterSeconds(),
			}
		}
	}
	if err := s.pool.submit(t); err != nil {
		cancel()
		if errors.Is(err, errQueueFull) {
			s.met.shed.Add(1)
			return nil, &apiError{
				Status:     http.StatusTooManyRequests,
				Msg:        "job queue full, retry later",
				RetryAfter: s.retryAfterSeconds(),
			}
		}
		return nil, &apiError{Status: 503, Msg: "server is draining"}
	}
	go func() { <-t.done; cancel() }()
	return t, nil
}

// ---- HTTP handlers ----

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	buf := getBuf()
	defer putBuf(buf)
	body, aerr := readBody(buf, r.Body)
	if aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}

	binReq := isBinContentType(r.Header.Get("Content-Type"))
	codec := respCodecFor(binReq, r.Header.Get("Accept"))

	// Raw fast path: a byte-identical body already answered with settled
	// quality is served straight from its stored encoding — no decode, no
	// graph/table resolution, no digest. The probe keys the cache by the raw
	// bytes (allocation-free) and is skipped when the compute-deadline header
	// is malformed, so the 400 contract of applyComputeDeadline still holds; a
	// well-formed header never changes a settled cached answer, so it does not
	// need to be part of the key. A stored entry missing the negotiated
	// response codec falls through; the solve path merges that encoding in.
	if h := r.Header.Get(DeadlineHeader); h == "" || validDeadlineHeader(h) {
		if v, ok := s.rawCache.getBytes(body); ok && !v.(*rawEntry).batch {
			if e := v.(*rawEntry); e.body[codec] != nil {
				s.met.requests.Add(1)
				s.met.cacheHits.Add(1)
				s.met.rawHits.Add(1)
				s.met.solveCached.Add(1)
				if e.quality != "" {
					w.Header().Set(QualityHeader, e.quality)
				}
				w.Header().Set("Content-Type", codec.contentType())
				w.WriteHeader(http.StatusOK)
				//hetsynth:ignore retval a failed write means the client is gone;
				// the response status is already committed.
				_, _ = w.Write(e.body[codec])
				return
			}
		}
	}

	var spec *solveSpec
	if binReq {
		var aerr *apiError
		if spec, aerr = decodeSolveRequestBin(body); aerr != nil {
			s.met.badRequests.Add(1)
			writeErr(w, aerr)
			return
		}
	} else if spec2, err := decodeSolveRequestBytes(body); err != nil {
		s.met.badRequests.Add(1)
		writeErr(w, err.(*apiError))
		return
	} else {
		spec = spec2
	}
	if aerr := applyComputeDeadline(spec, r); aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}
	s.met.requests.Add(1)

	if res, source, apiErr := s.tryFast(spec); apiErr != nil {
		writeErr(w, apiErr)
		return
	} else if res != nil {
		s.writeResult(w, res, source, body, codec)
		return
	}

	// Piggyback on an identical in-flight solve without occupying a worker.
	if f, ok := s.flights.Join(spec.key); ok {
		select {
		case <-f.Done():
		case <-r.Context().Done():
			return
		}
		res, ferr := f.Result()
		if ferr != nil {
			writeErr(w, classifySolveErr(ferr))
			return
		}
		s.met.coalesced.Add(1)
		s.writeResult(w, res, "coalesced", nil, codec)
		return
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, s.solveBudget(spec))
	out := &solveOutcome{}
	t, apiErr := s.dispatch(ctx, cancel, func(ctx context.Context) {
		out.res, out.source, out.err = s.runSolve(ctx, spec)
	}, nil, nil)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	select {
	case <-t.done:
	case <-r.Context().Done():
		// Client gone; the solve keeps running and lands in the cache.
		return
	case <-ctx.Done():
		// The compute budget expired with the task still queued or running.
		// Grant a short grace for the cooperative solver to observe the
		// cancellation and surface a partial (anytime) result; past that,
		// abandon the wait — a sync client is never parked behind a worker
		// that will not yield. After abandoning, out must not be read: the
		// worker may still write it.
		grace := time.NewTimer(abandonGrace)
		defer grace.Stop()
		select {
		case <-t.done:
		case <-r.Context().Done():
			return
		case <-grace.C:
			s.met.abandoned.Add(1)
			writeErr(w, &apiError{Status: 504, Msg: "solve exceeded its time budget"})
			return
		}
	}
	if out.res == nil && out.err == nil {
		// The task was skipped: its context died while queued.
		writeErr(w, classifySolveErr(ctx.Err()))
		return
	}
	if out.err != nil {
		writeErr(w, classifySolveErr(out.err))
		return
	}
	s.writeResult(w, out.res, out.source, nil, codec)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSolveRequest(r.Body)
	if err != nil {
		s.met.badRequests.Add(1)
		writeErr(w, err.(*apiError))
		return
	}
	if aerr := applyComputeDeadline(spec, r); aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}
	s.met.requests.Add(1)

	j := &Job{ID: newJobID(), status: JobQueued, created: time.Now(), done: make(chan struct{})}

	// Fast paths complete the job before it ever reaches the queue.
	if res, source, apiErr := s.tryFast(spec); apiErr != nil {
		s.settleJob(j, JobFailed, source, nil, apiErr.Msg, apiErr.Status)
		s.jobs.add(j)
		s.met.jobsSubmitted.Add(1)
		writeJSON(w, http.StatusCreated, j.view())
		return
	} else if res != nil {
		if s.settleJob(j, JobDone, source, res, "", 0) {
			countEndpoint(&s.met.solveCached, &s.met.solveUncached, source)
		}
		s.jobs.add(j)
		s.met.jobsSubmitted.Add(1)
		writeJSON(w, http.StatusCreated, j.view())
		return
	}

	tctx, tcancel := context.WithTimeout(s.baseCtx, s.solveBudget(spec))
	jctx, jcancel := context.WithCancel(tctx)
	// j is not yet shared, but take the lock anyway: the guardedby invariant
	// is cheap here and survives any future reordering against jobs.add.
	j.mu.Lock()
	j.cancel = jcancel
	j.mu.Unlock()
	out := &solveOutcome{}
	finish := func() {
		switch {
		case out.res != nil:
			if s.settleJob(j, JobDone, out.source, out.res, "", 0) {
				countEndpoint(&s.met.solveCached, &s.met.solveUncached, out.source)
			}
		default:
			err := out.err
			if err == nil { // skipped in queue: context cancelled or timed out
				err = jctx.Err()
			}
			ae := classifySolveErr(err)
			status := JobFailed
			if errors.Is(err, context.Canceled) {
				status = JobCanceled
			}
			s.settleJob(j, status, "", nil, ae.Msg, ae.Status)
		}
	}
	// finish runs on the worker for executed jobs (so drain implies settled
	// jobs); the janitor below settles jobs whose context died while queued.
	t, apiErr := s.dispatch(jctx, func() { jcancel(); tcancel() }, func(ctx context.Context) {
		out.res, out.source, out.err = s.runSolve(ctx, spec)
	}, j.setRunning, finish)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	s.jobs.add(j)
	s.met.jobsSubmitted.Add(1)
	go func() { <-t.done; finish() }()
	writeJSON(w, http.StatusCreated, j.view())
}

// settleJob finishes j and, when this call actually performed the terminal
// transition, bumps the matching terminal-state counter — keeping the books
// balanced (jobs_submitted == jobs_done + jobs_failed + jobs_canceled_final
// after a drain) even when a worker and the queue janitor race to settle the
// same job. It reports whether this call performed the transition, so
// endpoint-specific once-only accounting (e.g. the admit verdict ledger)
// can piggyback on the same dedup.
func (s *Server) settleJob(j *Job, status, source string, res any, errMsg string, errCode int) bool {
	if !j.finish(status, source, res, errMsg, errCode) {
		return false
	}
	switch status {
	case JobDone:
		s.met.jobsDone.Add(1)
	case JobCanceled:
		s.met.jobsCanceledFinal.Add(1)
	default:
		s.met.jobsFailed.Add(1)
	}
	return true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "no such job"})
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.met.jobsCanceled.Add(1)
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"benchmarks": benchdfg.Names(),
		"catalogs":   fu.Catalogs(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.met.snapshot(s.cache.len(), s.sessions.len()))
}

// handlePeerz is GET /v1/peerz: the cluster health/load exchange. A router
// (cmd/hetsynthrouter) polls it at high frequency to steer consistent-hash
// weights, so it is deliberately a fraction of /metrics — a handful of
// counters, no histogram walk.
func (s *Server) handlePeerz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, PeerzSnapshot{
		Status:       status,
		Workers:      s.cfg.Workers,
		QueueDepth:   s.met.queueDepth.Load(),
		InFlight:     s.met.inFlight.Load(),
		MeanSolveMS:  float64(s.met.meanSolve()) / float64(time.Millisecond),
		CacheEntries: s.cache.len(),
		Sessions:     s.sessions.len(),
	})
}

// ---- response plumbing ----

// writeResult encodes a solve response through a pooled buffer — JSON or the
// binary frame, per the negotiated codec — and writes it in one shot. When
// rawKey is the verbatim request body and the answer came settled from the
// result cache, the encoded bytes are additionally stored in the raw-body
// cache so the next byte-identical request skips decoding and digesting
// entirely ("cache" is the only source stored: it is the steady state, its
// quality is settled by construction, and storing it verbatim keeps the
// source field of raw replays truthful).
func (s *Server) writeResult(w http.ResponseWriter, res *SolveResult, source string, rawKey []byte, codec codecID) {
	countEndpoint(&s.met.solveCached, &s.met.solveUncached, source)
	var out []byte
	if codec == codecBin {
		bb := getBinBuf()
		defer putBinBuf(bb)
		bb.b = appendSolveRespFrame(bb.b, &SolveResponse{Source: source, SolveResult: *res})
		out = bb.b
	} else {
		eb := getEncBuf()
		defer putEncBuf(eb)
		if err := eb.enc.Encode(SolveResponse{Source: source, SolveResult: *res}); err != nil {
			writeErr(w, &apiError{Status: 500, Msg: "encoding response: " + err.Error()})
			return
		}
		out = eb.buf.Bytes()
	}
	if res.Quality != "" {
		w.Header().Set(QualityHeader, res.Quality)
	}
	w.Header().Set("Content-Type", codec.contentType())
	w.WriteHeader(http.StatusOK)
	//hetsynth:ignore retval a failed write means the client is gone; the
	// response status is already committed and there is no recovery path.
	_, _ = w.Write(out)
	if source == "cache" && len(rawKey) > 0 && len(rawKey) <= maxRawKeyBytes {
		s.storeRaw(rawKey, codec, out, res.Quality, false, 1)
	}
}

// storeRaw (re)stores the raw-replay entry for key: the fresh encoding fills
// its codec's slot, and any encoding the previous entry already held for the
// other codec is carried over, so one entry always owns every produced
// encoding of the answer. Entries stay immutable — a merge builds a new one —
// and both codecs live under the one key, which is what makes their pin and
// eviction lifetime atomic.
func (s *Server) storeRaw(key []byte, codec codecID, enc []byte, quality string, batch bool, entries int) {
	e := &rawEntry{quality: quality, batch: batch, entries: entries}
	e.body[codec] = append([]byte(nil), enc...)
	if v, ok := s.rawCache.getBytes(key); ok {
		if old := v.(*rawEntry); old.batch == batch {
			for c := range old.body {
				if e.body[c] == nil {
					e.body[c] = old.body[c]
				}
			}
		}
	}
	s.rawCache.put(string(key), e)
}

func writeErr(w http.ResponseWriter, e *apiError) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.Status, map[string]any{"error": e.Msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	eb := getEncBuf()
	defer putEncBuf(eb)
	if err := eb.enc.Encode(v); err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//hetsynth:ignore retval a failed write means the client is gone; the
	// response status is already committed and there is no recovery path.
	_, _ = w.Write(eb.buf.Bytes())
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so the SSE handler's streaming
// contract survives the logging wrapper; the embedded interface alone would
// hide the underlying Flusher from type assertions.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// logged wraps a handler with structured request logging. Servers built
// without a Logger skip the wrapper entirely: the hot path then writes
// straight to the ResponseWriter with no per-request wrapper allocation or
// discarded log records.
func (s *Server) logged(next http.Handler) http.Handler {
	if s.noLog {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start))/float64(time.Millisecond),
		)
	})
}
