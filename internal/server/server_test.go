package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetsynth/internal/benchdfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJSON posts body to path and decodes the JSON response.
func postJSON(t *testing.T, ts *httptest.Server, method, path, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("bad response JSON (%d): %s", resp.StatusCode, raw)
		}
	}
	return resp.StatusCode, m
}

const volterraReq = `{"bench":"volterra","seed":1,"slack":5}`

func TestSolveBasicAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/solve", volterraReq)
	if code != 200 {
		t.Fatalf("first solve: status %d: %v", code, m)
	}
	if m["source"] != "solve" {
		t.Fatalf("first solve source = %v, want solve", m["source"])
	}
	cost1 := m["cost"].(float64)

	code, m = postJSON(t, ts, "POST", "/v1/solve", volterraReq)
	if code != 200 || m["source"] != "cache" {
		t.Fatalf("second solve: status %d source %v, want 200/cache", code, m["source"])
	}
	if m["cost"].(float64) != cost1 {
		t.Fatalf("cache returned different cost: %v vs %v", m["cost"], cost1)
	}
	snap := s.Metrics()
	if snap.Solves != 1 || snap.CacheHits != 1 {
		t.Fatalf("metrics solves=%d cacheHits=%d, want 1/1", snap.Solves, snap.CacheHits)
	}
}

// TestCacheAndFrontierHitsBypassPool proves cached answers never touch the
// worker pool: after warming the cache the pool is drained outright, and both
// an identical request (result cache) and a deadline-only-changed request
// (frontier curve) still answer 200 while any genuine miss gets 503.
func TestCacheAndFrontierHitsBypassPool(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/solve", `{"bench":"volterra","seed":1,"deadline":40}`)
	if code != 200 {
		t.Fatalf("warm solve: status %d: %v", code, m)
	}

	s.draining.Store(true)
	s.pool.drain()

	code, m = postJSON(t, ts, "POST", "/v1/solve", `{"bench":"volterra","seed":1,"deadline":40}`)
	if code != 200 || m["source"] != "cache" {
		t.Fatalf("cache hit on drained pool: status %d source %v", code, m["source"])
	}
	code, m = postJSON(t, ts, "POST", "/v1/solve", `{"bench":"volterra","seed":1,"deadline":35}`)
	if code != 200 || m["source"] != "frontier" {
		t.Fatalf("frontier hit on drained pool: status %d source %v", code, m["source"])
	}
	// A different instance genuinely needs a worker — and there are none.
	code, _ = postJSON(t, ts, "POST", "/v1/solve", `{"bench":"volterra","seed":2,"deadline":40}`)
	if code != 503 {
		t.Fatalf("miss on drained pool: status %d, want 503", code)
	}
}

// TestFrontierServesDeadlineSweep checks the frontier fast path end to end
// against the direct tree solver: one pool solve builds the curve, then a
// sweep of deadlines is answered from it, each matching TreeAssign exactly.
func TestFrontierServesDeadlineSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	b, _ := benchdfg.Lookup("volterra")
	g := b.Build()
	tab := fu.RandomTable(newRand(1), g.N(), 3)
	min, err := hap.MinMakespan(g, tab)
	if err != nil {
		t.Fatal(err)
	}

	code, m := postJSON(t, ts, "POST", "/v1/solve", fmt.Sprintf(`{"bench":"volterra","seed":1,"deadline":%d}`, min+4))
	if code != 200 || m["source"] != "solve" {
		t.Fatalf("warm: status %d source %v", code, m["source"])
	}
	if m["frontier"] == nil {
		t.Fatal("tree solve response missing frontier curve")
	}

	for L := min; L <= min+12; L++ {
		code, m := postJSON(t, ts, "POST", "/v1/solve", fmt.Sprintf(`{"bench":"volterra","seed":1,"deadline":%d}`, L))
		if code != 200 {
			t.Fatalf("L=%d: status %d: %v", L, code, m)
		}
		if src := m["source"]; src != "frontier" && src != "cache" {
			t.Fatalf("L=%d: source %v, want frontier or cache", L, src)
		}
		want, err := hap.TreeAssign(hap.Problem{Graph: g, Table: tab, Deadline: L})
		if err != nil {
			t.Fatalf("L=%d: reference TreeAssign: %v", L, err)
		}
		if int64(m["cost"].(float64)) != want.Cost {
			t.Fatalf("L=%d: cost %v, want %d", L, m["cost"], want.Cost)
		}
		if int(m["length"].(float64)) > L {
			t.Fatalf("L=%d: length %v exceeds deadline", L, m["length"])
		}
	}
	snap := s.Metrics()
	if snap.Solves != 1 {
		t.Fatalf("sweep ran %d pool solves, want 1 (rest from the curve)", snap.Solves)
	}
	// Below the curve is authoritative infeasibility, still without a solve.
	code, _ = postJSON(t, ts, "POST", "/v1/solve", fmt.Sprintf(`{"bench":"volterra","seed":1,"deadline":%d}`, min-1))
	if code != 422 {
		t.Fatalf("infeasible deadline: status %d, want 422", code)
	}
	if s.Metrics().Solves != 1 {
		t.Fatal("infeasible answer consumed a pool solve")
	}
}

// TestConcurrentIdenticalRequestsCoalesce fires identical requests at a
// solver blocked inside preSolve and checks exactly one solver execution
// happened; every request still gets the same correct answer.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 32})
	arrived := make(chan struct{}, 16)
	release := make(chan struct{})
	s.preSolve = func(ctx context.Context) {
		arrived <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	const N = 8
	body := `{"bench":"diffeq","seed":7,"slack":4,"algorithm":"repeat"}`
	type reply struct {
		code int
		m    map[string]any
	}
	replies := make(chan reply, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				replies <- reply{code: -1}
				return
			}
			defer resp.Body.Close()
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			replies <- reply{code: resp.StatusCode, m: m}
		}()
	}

	<-arrived                          // the leader is inside the solver
	time.Sleep(100 * time.Millisecond) // let the rest pile up behind it
	close(release)
	wg.Wait()
	close(replies)

	var cost float64 = -1
	for r := range replies {
		if r.code != 200 {
			t.Fatalf("request failed: %d %v", r.code, r.m)
		}
		c := r.m["cost"].(float64)
		if cost == -1 {
			cost = c
		} else if c != cost {
			t.Fatalf("divergent costs across coalesced requests: %v vs %v", c, cost)
		}
	}
	if got := len(arrived); got != 0 {
		t.Fatalf("%d extra solver executions beyond the leader", got)
	}
	if snap := s.Metrics(); snap.Solves != 1 {
		t.Fatalf("solves = %d, want 1 for %d identical in-flight requests", snap.Solves, N)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/jobs", `{"bench":"diffeq","seed":3,"slack":4,"algorithm":"repeat"}`)
	if code != 201 {
		t.Fatalf("submit: status %d: %v", code, m)
	}
	id := m["id"].(string)

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, m = postJSON(t, ts, "GET", "/v1/jobs/"+id, "")
		if code != 200 {
			t.Fatalf("poll: status %d", code)
		}
		if st := m["status"]; st == JobDone || st == JobFailed || st == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m["status"] != JobDone {
		t.Fatalf("job status %v: %v", m["status"], m)
	}
	res := m["result"].(map[string]any)
	if res["cost"].(float64) <= 0 {
		t.Fatalf("job result has no cost: %v", res)
	}

	// A second submission of the same request completes instantly from cache.
	code, m = postJSON(t, ts, "POST", "/v1/jobs", `{"bench":"diffeq","seed":3,"slack":4,"algorithm":"repeat"}`)
	if code != 201 || m["status"] != JobDone || m["source"] != "cache" {
		t.Fatalf("cached job: status %d %v source %v", code, m["status"], m["source"])
	}

	code, _ = postJSON(t, ts, "GET", "/v1/jobs/nope", "")
	if code != 404 {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
}

func TestJobCancel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	s.preSolve = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); close(release); s.Close() })

	code, m := postJSON(t, ts, "POST", "/v1/jobs", `{"bench":"diffeq","seed":9,"slack":4,"algorithm":"repeat"}`)
	if code != 201 {
		t.Fatalf("submit: status %d", code)
	}
	id := m["id"].(string)
	code, _ = postJSON(t, ts, "DELETE", "/v1/jobs/"+id, "")
	if code != 200 {
		t.Fatalf("cancel: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, m = postJSON(t, ts, "GET", "/v1/jobs/"+id, "")
		if st := m["status"]; st == JobCanceled || st == JobFailed || st == JobDone {
			if st != JobCanceled {
				t.Fatalf("canceled job ended as %v: %v", st, m)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled after cancel: %v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainCompletesInFlightJobs exercises Run's shutdown path: a job is
// blocked mid-solve when the serve context is cancelled; drain must wait for
// it to finish (status done), then Run returns.
func TestDrainCompletesInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	s.preSolve = func(ctx context.Context) {
		select {
		case arrived <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"diffeq","seed":11,"slack":4,"algorithm":"repeat"}`))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, m)
	}
	id := m["id"].(string)

	<-arrived // the job is on a worker, inside the solver
	cancel()  // begin drain while it is still blocked

	select {
	case err := <-runDone:
		t.Fatalf("Run returned before the in-flight job finished: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	close(release)

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	j, ok := s.jobs.get(id)
	if !ok {
		t.Fatal("job vanished across drain")
	}
	if v := j.view(); v.Status != JobDone {
		t.Fatalf("drained job status %q, want done: %+v", v.Status, v)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.preSolve = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); close(release); s.Close() })

	// Distinct instances (different seeds) so nothing coalesces: #1 occupies
	// the worker, #2 the queue slot, #3 must be load-shed with 429.
	submit := func(seed int) int {
		code, _ := postJSON(t, ts, "POST", "/v1/jobs",
			fmt.Sprintf(`{"bench":"diffeq","seed":%d,"slack":4,"algorithm":"repeat"}`, seed))
		return code
	}
	if code := submit(1); code != 201 {
		t.Fatalf("job 1: status %d", code)
	}
	<-started // worker busy
	if code := submit(2); code != 201 {
		t.Fatalf("job 2: status %d", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"diffeq","seed":3,"slack":4,"algorithm":"repeat"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429 (queue full)", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	m := s.Metrics()
	if m.QueueRejected == 0 {
		t.Fatal("queue_rejected metric not incremented")
	}
	if m.Shed == 0 {
		t.Fatal("shed metric not incremented")
	}
}

func TestSolveTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.preSolve = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	code, m := postJSON(t, ts, "POST", "/v1/solve", `{"bench":"diffeq","seed":5,"slack":4,"algorithm":"repeat","timeout_ms":50}`)
	if code != 504 {
		t.Fatalf("timed-out solve: status %d: %v", code, m)
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"bench":`},
		{"unknown field", `{"bench":"volterra","seed":1,"slack":2,"wat":true}`},
		{"missing deadline", `{"bench":"volterra","seed":1}`},
		{"deadline and slack", `{"bench":"volterra","seed":1,"deadline":30,"slack":2}`},
		{"unknown bench", `{"bench":"nope","seed":1,"slack":2}`},
		{"graph and bench", `{"bench":"volterra","graph":{"nodes":[],"edges":[]},"seed":1,"slack":2}`},
		{"no table source", `{"bench":"volterra","slack":2}`},
		{"two table sources", `{"bench":"volterra","seed":1,"catalog":"generic3","slack":2}`},
		{"bad algorithm", `{"bench":"volterra","seed":1,"slack":2,"algorithm":"magic"}`},
		{"negative slack", `{"bench":"volterra","seed":1,"slack":-1}`},
		{"bad graph payload", `{"graph":{"nodes":[{"name":"a","op":"add"}],"edges":[{"from":"a","to":"zzz"}]},"seed":1,"slack":2}`},
		{"ragged table", `{"bench":"volterra","table":{"time":[[1]],"cost":[[1]]},"slack":2}`},
		{"trailing data", `{"bench":"volterra","seed":1,"slack":2} {"x":1}`},
	}
	for _, tc := range cases {
		code, m := postJSON(t, ts, "POST", "/v1/solve", tc.body)
		if code != 400 {
			t.Errorf("%s: status %d (%v), want 400", tc.name, code, m)
		}
		if code == 400 && (m["error"] == nil || m["error"] == "") {
			t.Errorf("%s: 400 without error message", tc.name)
		}
	}
	// Shape mismatch surfaces as 400 too: tree algorithm on a non-tree graph.
	code, _ := postJSON(t, ts, "POST", "/v1/solve", `{"bench":"diffeq","seed":1,"slack":2,"algorithm":"tree"}`)
	if code != 400 {
		t.Errorf("tree algo on non-tree: status %d, want 400", code)
	}
}

func TestInlineGraphAndTable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"graph": {"nodes":[{"name":"a","op":"mul"},{"name":"b","op":"add"}],
		          "edges":[{"from":"a","to":"b"}]},
		"table": {"time":[[2,1],[2,1]],"cost":[[1,9],[1,9]]},
		"deadline": 3,
		"schedule": true
	}`
	code, m := postJSON(t, ts, "POST", "/v1/solve", body)
	if code != 200 {
		t.Fatalf("inline solve: status %d: %v", code, m)
	}
	// Deadline 3 forces at least one fast-but-costly type-2 pick.
	if c := m["cost"].(float64); c != 10 {
		t.Fatalf("inline solve cost %v, want 10 (one fast, one cheap)", c)
	}
	if m["schedule"] == nil {
		t.Fatal("schedule requested but missing from response")
	}
	sched := m["schedule"].(map[string]any)
	if int(sched["length"].(float64)) > 3 {
		t.Fatalf("schedule length %v exceeds deadline 3", sched["length"])
	}
}

func TestCatalogSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "POST", "/v1/solve", `{"bench":"elliptic","catalog":"lowpower","slack":6}`)
	if code != 200 {
		t.Fatalf("catalog solve: status %d: %v", code, m)
	}
	if m["cost"].(float64) <= 0 || len(m["assignment"].([]any)) == 0 {
		t.Fatalf("catalog solve incomplete: %v", m)
	}
}

func TestHealthzMetricsBenchmarks(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, m := postJSON(t, ts, "GET", "/healthz", "")
	if code != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, m)
	}
	code, m = postJSON(t, ts, "GET", "/v1/benchmarks", "")
	if code != 200 || m["benchmarks"] == nil || m["catalogs"] == nil {
		t.Fatalf("benchmarks: %d %v", code, m)
	}
	postJSON(t, ts, "POST", "/v1/solve", volterraReq)
	postJSON(t, ts, "POST", "/v1/solve", volterraReq)
	code, m = postJSON(t, ts, "GET", "/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	if m["solves"].(float64) != 1 || m["cache_hits"].(float64) != 1 {
		t.Fatalf("metrics counters: %v", m)
	}
	if m["cache_hit_rate"].(float64) != 0.5 {
		t.Fatalf("cache_hit_rate = %v, want 0.5", m["cache_hit_rate"])
	}
	if m["solve_latency"] == nil {
		t.Fatal("metrics missing solve_latency histogram")
	}

	s.draining.Store(true)
	code, m = postJSON(t, ts, "GET", "/healthz", "")
	if code != 503 || m["status"] != "draining" {
		t.Fatalf("draining healthz: %d %v", code, m)
	}
}

// TestSolveMatchesDirectSolver cross-checks the HTTP answer against calling
// the solver library directly for both a tree and a general DAG.
func TestSolveMatchesDirectSolver(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		bench string
		algo  string
		seed  int64
	}{
		{"volterra", "auto", 1},
		{"4-stage-lattice", "tree", 2},
		{"diffeq", "repeat", 3},
		{"rls-laguerre", "once", 4},
	} {
		b, ok := benchdfg.Lookup(tc.bench)
		if !ok {
			t.Fatalf("missing bench %s", tc.bench)
		}
		g := b.Build()
		tab := fu.RandomTable(newRand(tc.seed), g.N(), 3)
		min, err := hap.MinMakespan(g, tab)
		if err != nil {
			t.Fatal(err)
		}
		L := min + 5
		algo, _ := hap.ParseAlgorithm(tc.algo)
		want, err := hap.Solve(hap.Problem{Graph: g, Table: tab, Deadline: L}, algo)
		if err != nil {
			t.Fatalf("%s/%s: direct solve: %v", tc.bench, tc.algo, err)
		}
		code, m := postJSON(t, ts, "POST", "/v1/solve",
			fmt.Sprintf(`{"bench":%q,"seed":%d,"deadline":%d,"algorithm":%q}`, tc.bench, tc.seed, L, tc.algo))
		if code != 200 {
			t.Fatalf("%s/%s: status %d: %v", tc.bench, tc.algo, code, m)
		}
		if int64(m["cost"].(float64)) != want.Cost {
			t.Fatalf("%s/%s: HTTP cost %v, direct cost %d", tc.bench, tc.algo, m["cost"], want.Cost)
		}
	}
}

// TestResponseRoundTrip decodes a full response into the typed wire structs,
// ensuring the server payloads survive a JSON round trip.
func TestResponseRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"bench":"volterra","seed":1,"slack":6,"schedule":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("decode into SolveResponse: %v", err)
	}
	if sr.Source != "solve" || sr.Cost <= 0 || len(sr.Assignment) == 0 || sr.Schedule == nil || len(sr.Frontier) == 0 {
		t.Fatalf("round-tripped response incomplete: %+v", sr)
	}
	re, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	var again SolveResponse
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, sr), mustJSON(t, again)) {
		t.Fatal("SolveResponse not stable across marshal/unmarshal")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
