package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"hetsynth/internal/canon"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// maxPatchOps bounds the delta count of a single PATCH; a client that wants
// to replace more of the instance than this re-PUTs it instead.
const maxPatchOps = 4096

// PatchRequest is the JSON body of PATCH /v1/instances/{id}: an ordered list
// of deltas applied atomically — either every op validates and the whole
// patch commits (and is re-solved), or the session state is left exactly as
// it was and the response is a 400 naming the offending op.
type PatchRequest struct {
	Ops []PatchOp `json:"ops"`
	// TimeoutMS overrides the session's compute budget for this patch's
	// re-solve; 0 inherits the budget set at session creation.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// PatchOp is one session delta. Op selects the variant and which fields are
// read:
//
//   - "set_row": replace node Node's (time, cost) row with Time/Cost
//     (exactly K entries each, times >= 1, costs >= 0);
//   - "add_edge": append an edge From -> To carrying Delays delays;
//   - "remove_edge": delete the first current edge From -> To (its delay
//     count is taken from the edge itself);
//   - "set_deadline": retarget the deadline to Deadline.
//
// Deltas never add nodes or FU types — that is a new instance; re-PUT it.
type PatchOp struct {
	Op string `json:"op"`

	Node *int    `json:"node,omitempty"`
	Time []int   `json:"time,omitempty"`
	Cost []int64 `json:"cost,omitempty"`

	From   *int `json:"from,omitempty"`
	To     *int `json:"to,omitempty"`
	Delays int  `json:"delays,omitempty"`

	Deadline int `json:"deadline,omitempty"`
}

// SessionView is the wire representation of a session, returned by PUT,
// PATCH and GET on /v1/instances/{id} and carried in SSE "state" frames.
// Digest is the canonical instance digest of the session's current
// graph+table — byte-identical to what a stateless solve of the equivalent
// whole instance would digest — and RequestDigest additionally folds in the
// deadline and algorithm. Source says how the last answer was produced:
// "incremental" (the live tree DP re-solved only the Recomputed dirty
// curves) or "solve" (a from-scratch run). Infeasible marks a committed
// state whose deadline no assignment can meet; Result is then omitted.
type SessionView struct {
	ID            string       `json:"id"`
	Gen           int64        `json:"gen"`
	Digest        string       `json:"digest"`
	RequestDigest string       `json:"request_digest"`
	Algorithm     string       `json:"algorithm"`
	Deadline      int          `json:"deadline"`
	Nodes         int          `json:"nodes"`
	Edges         int          `json:"edges"`
	Tree          bool         `json:"tree"`
	Infeasible    bool         `json:"infeasible"`
	Source        string       `json:"source"`
	Recomputed    int          `json:"recomputed"`
	Result        *SolveResult `json:"result,omitempty"`
	Subscribers   int          `json:"subscribers"`
}

// session is one stateful instance: the materialized graph/table/deadline,
// the retained canonical encoding that digests deltas in place, and — for
// tree-shaped instances under a tree-capable algorithm — a live
// hap.IncrementalSolver that re-solves patches in O(dirty ancestor paths).
type session struct {
	id       string
	algoName string
	algo     hap.Algorithm
	anytime  bool
	timeout  int // sticky compute budget from the PUT body (ms); 0 = server default

	// ctx parents every solve the session runs; cancel fires at eviction, so
	// an in-flight ladder dies with its session instead of outliving it.
	ctx    context.Context
	cancel context.CancelFunc

	// opMu serializes whole operations: staging, solver mutation and commit
	// run under it, so the state below is only ever touched by one PATCH (or
	// the eviction teardown) at a time. Readers (GET, SSE, the janitor) never
	// touch these fields — they read the mu-guarded view mirror instead.
	// Lock order: opMu before mu.
	opMu     sync.Mutex
	gen      int64
	nodes    []dfg.Node
	edges    []dfg.Edge
	graph    *dfg.Graph
	table    *fu.Table
	deadline int
	enc      *canon.InstanceEnc
	inc      *hap.IncrementalSolver // live tree DP; nil when shape or algorithm rules it out
	pinKey   string                 // frontier-cache key this session pins; "" = none

	mu       sync.Mutex
	view     SessionView // guarded by mu
	subs     []*sseSub   // guarded by mu
	lastUsed time.Time   // guarded by mu
	evicted  bool        // guarded by mu
}

// touch refreshes the session's idle clock; every handler that resolves the
// session calls it, so TTL eviction measures true client inactivity.
func (ss *session) touch() {
	ss.mu.Lock()
	ss.lastUsed = time.Now()
	ss.mu.Unlock()
}

// idleSince reports when the session was last touched.
func (ss *session) idleSince() time.Time {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastUsed
}

// isEvicted reports whether eviction has begun for this session.
func (ss *session) isEvicted() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.evicted
}

// beginEvict marks the session evicted exactly once and detaches its
// subscriber list for the terminal frame; the second and later callers get
// (nil, false) and must not tear anything down.
func (ss *session) beginEvict() ([]*sseSub, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.evicted {
		return nil, false
	}
	ss.evicted = true
	subs := ss.subs
	ss.subs = nil
	return subs, true
}

// currentView returns the last committed view plus the live subscriber
// count.
func (ss *session) currentView() SessionView {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	v := ss.view
	v.Subscribers = len(ss.subs)
	return v
}

// publishView installs the committed view and refreshes the idle clock.
func (ss *session) publishView(v SessionView) {
	ss.mu.Lock()
	ss.view = v
	ss.lastUsed = time.Now()
	ss.mu.Unlock()
}

// ---- session store ----

// sessionStore maps instance ids to live sessions.
type sessionStore struct {
	mu sync.Mutex
	m  map[string]*session // guarded by mu
}

func newSessionStore() *sessionStore {
	return &sessionStore{m: make(map[string]*session)}
}

func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.m[id]
	return ss, ok
}

// put installs ss under id and returns the session it replaced, if any.
func (st *sessionStore) put(id string, ss *session) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.m[id]
	st.m[id] = ss
	return old
}

// remove deletes id only while it still maps to ss, so evicting a replaced
// session never drops its successor.
func (st *sessionStore) remove(id string, ss *session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.m[id] == ss {
		delete(st.m, id)
	}
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// all snapshots the live sessions (janitor sweeps and shutdown iterate the
// snapshot, never the map, so eviction can re-enter the store freely).
func (st *sessionStore) all() []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*session, 0, len(st.m))
	for _, ss := range st.m {
		out = append(out, ss)
	}
	return out
}

// validSessionID bounds instance ids to a filesystem/URL-safe charset.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// treeAlgo reports whether the algorithm treats tree-shaped instances
// through the optimal tree DP — the same rule solveSpec.tree uses — and so
// whether a session may answer through its IncrementalSolver.
func treeAlgo(name string) bool {
	return name == "auto" || name == "tree" || name == "anytime"
}

// ---- staging ----

type rowEdit struct {
	times []int
	costs []int64
}

// incOp is one validated delta in patch order, replayable onto a live
// IncrementalSolver.
type incOp struct {
	kind     string // "row", "add", "remove", "deadline"
	node     int
	row      rowEdit
	u, v     dfg.NodeID
	delays   int
	deadline int
}

// stagedPatch is a fully validated patch: the post-patch edge list, graph
// and deadline, the last-wins row edits, and the ordered op replay for the
// incremental solver. Nothing in it aliases mutable session state except
// graph/edges when the patch had no structural ops.
type stagedPatch struct {
	rows       map[int]rowEdit
	incOps     []incOp
	edges      []dfg.Edge
	structural bool
	graph      *dfg.Graph
	deadline   int
	treeOK     bool // post-patch shape + algorithm admit the tree DP

	tab *fu.Table // lazily materialized post-patch table
}

// stagedTable returns the post-patch table: base itself when the patch has
// no row edits, otherwise a clone with the edits applied.
func (st *stagedPatch) stagedTable(base *fu.Table) *fu.Table {
	if st.tab != nil {
		return st.tab
	}
	if len(st.rows) == 0 {
		st.tab = base
		return base
	}
	st.tab = base.Clone()
	for v, re := range st.rows {
		st.tab.MustSet(v, re.times, re.costs)
	}
	return st.tab
}

// buildSessionGraph materializes a dfg.Graph from a session's node set and
// an edge list, validating the zero-delay portion is acyclic.
func buildSessionGraph(nodes []dfg.Node, edges []dfg.Edge) (*dfg.Graph, error) {
	g := dfg.New()
	g.Grow(len(nodes), len(edges))
	for _, nd := range nodes {
		g.MustAddNode(nd.Name, nd.Op)
	}
	for _, e := range edges {
		if err := g.AddEdge(e.From, e.To, e.Delays); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// stage validates ops against the session's current state and builds the
// post-patch state without touching the session: a 400 here is guaranteed
// to leave the instance exactly as it was. The caller holds opMu.
func (ss *session) stage(ops []PatchOp) (*stagedPatch, *apiError) {
	st := &stagedPatch{deadline: ss.deadline}
	edges := ss.edges
	n := len(ss.nodes)
	k := ss.table.K()
	for i, op := range ops {
		switch op.Op {
		case "set_row":
			if op.Node == nil {
				return nil, badRequest("ops[%d]: set_row requires node", i)
			}
			v := *op.Node
			if v < 0 || v >= n {
				return nil, badRequest("ops[%d]: node %d out of range [0,%d)", i, v, n)
			}
			if len(op.Time) != k || len(op.Cost) != k {
				return nil, badRequest("ops[%d]: row has %d/%d entries, want %d", i, len(op.Time), len(op.Cost), k)
			}
			for j := 0; j < k; j++ {
				if op.Time[j] < 1 || op.Time[j] > maxTableEntry {
					return nil, badRequest("ops[%d]: time %d for type %d outside [1,%d]", i, op.Time[j], j, int64(maxTableEntry))
				}
				if op.Cost[j] < 0 || op.Cost[j] > maxTableEntry {
					return nil, badRequest("ops[%d]: cost %d for type %d outside [0,%d]", i, op.Cost[j], j, int64(maxTableEntry))
				}
			}
			re := rowEdit{
				times: append([]int(nil), op.Time...),
				costs: append([]int64(nil), op.Cost...),
			}
			if st.rows == nil {
				st.rows = make(map[int]rowEdit)
			}
			st.rows[v] = re
			st.incOps = append(st.incOps, incOp{kind: "row", node: v, row: re})
		case "add_edge":
			if op.From == nil || op.To == nil {
				return nil, badRequest("ops[%d]: add_edge requires from and to", i)
			}
			u, v := *op.From, *op.To
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, badRequest("ops[%d]: edge (%d,%d) references unknown node", i, u, v)
			}
			if op.Delays < 0 || op.Delays > maxDeadline {
				return nil, badRequest("ops[%d]: edge delays %d outside [0,%d]", i, op.Delays, maxDeadline)
			}
			if u == v && op.Delays == 0 {
				return nil, badRequest("ops[%d]: zero-delay self-loop on node %d", i, u)
			}
			if !st.structural {
				edges = append([]dfg.Edge(nil), edges...)
				st.structural = true
			}
			edges = append(edges, dfg.Edge{From: dfg.NodeID(u), To: dfg.NodeID(v), Delays: op.Delays})
			st.incOps = append(st.incOps, incOp{kind: "add", u: dfg.NodeID(u), v: dfg.NodeID(v), delays: op.Delays})
		case "remove_edge":
			if op.From == nil || op.To == nil {
				return nil, badRequest("ops[%d]: remove_edge requires from and to", i)
			}
			u, v := *op.From, *op.To
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, badRequest("ops[%d]: edge (%d,%d) references unknown node", i, u, v)
			}
			if !st.structural {
				edges = append([]dfg.Edge(nil), edges...)
				st.structural = true
			}
			idx := -1
			for j, e := range edges {
				if e.From == dfg.NodeID(u) && e.To == dfg.NodeID(v) {
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil, badRequest("ops[%d]: no edge (%d,%d) to remove", i, u, v)
			}
			removed := edges[idx]
			edges = append(edges[:idx], edges[idx+1:]...)
			st.incOps = append(st.incOps, incOp{kind: "remove", u: dfg.NodeID(u), v: dfg.NodeID(v), delays: removed.Delays})
		case "set_deadline":
			if op.Deadline < 1 || op.Deadline > maxDeadline {
				return nil, badRequest("ops[%d]: deadline %d outside [1,%d]", i, op.Deadline, maxDeadline)
			}
			st.deadline = op.Deadline
			st.incOps = append(st.incOps, incOp{kind: "deadline", deadline: op.Deadline})
		default:
			return nil, badRequest("ops[%d]: unknown op %q (want set_row, add_edge, remove_edge or set_deadline)", i, op.Op)
		}
	}
	st.edges = edges
	if st.structural {
		g, err := buildSessionGraph(ss.nodes, edges)
		if err != nil {
			return nil, badRequest("patched graph invalid: %v", err)
		}
		st.graph = g
	} else {
		st.graph = ss.graph
	}
	st.treeOK = treeAlgo(ss.algoName) && (st.graph.IsOutForest() || st.graph.IsInForest())
	return st, nil
}

// ---- solving ----

// solveOut is the outcome of a session (re-)solve headed for commit.
type solveOut struct {
	res        *SolveResult
	source     string
	recomputed int
	infeasible bool
}

// reconcileInc brings the session's incremental solver in line with the
// staged patch: replay the deltas when the post-patch shape still admits
// the tree DP, rebuild the solver from the staged state when replay cannot
// express the change (e.g. the forest orientation flipped), and drop it
// when the instance stopped being a tree. Runs under ss.opMu.
func (s *Server) reconcileInc(ss *session, st *stagedPatch) {
	if st == nil {
		return
	}
	if ss.inc != nil {
		if st.treeOK && replayOnSolver(ss.inc, st) == nil {
			return
		}
		ss.inc.Close()
		ss.inc = nil
	}
	if !st.treeOK {
		return
	}
	prob := hap.Problem{Graph: st.graph, Table: st.stagedTable(ss.table), Deadline: st.deadline}
	if inc, err := hap.NewIncrementalSolver(prob); err == nil {
		ss.inc = inc
	}
}

// replayOnSolver applies the staged deltas, in patch order, to the live
// solver. Any error means the solver can no longer express the instance
// (the caller discards and rebuilds it), so a partial replay is harmless.
func replayOnSolver(inc *hap.IncrementalSolver, st *stagedPatch) error {
	for _, op := range st.incOps {
		var err error
		switch op.kind {
		case "row":
			err = inc.SetRow(op.node, op.row.times, op.row.costs)
		case "add":
			err = inc.AddEdge(op.u, op.v, op.delays)
		case "remove":
			err = inc.RemoveEdge(op.u, op.v, op.delays)
		case "deadline":
			err = inc.SetDeadline(op.deadline)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// solveSession produces the session's answer for prob — through the live
// incremental solver when one is attached (O(dirty ancestor paths) DP work),
// through a from-scratch solve otherwise — streaming incumbent frames to
// subscribers as they improve. A nil apiError means the outcome commits
// (including proven-infeasible states); a non-nil one aborts the patch.
// Runs under ss.opMu.
func (s *Server) solveSession(ctx context.Context, ss *session, prob hap.Problem, gen int64) (*solveOut, *apiError) {
	start := time.Now()
	out := &solveOut{}
	if ss.inc != nil {
		sol, err := ss.inc.Solve()
		out.source = "incremental"
		out.recomputed = ss.inc.Recomputed()
		switch {
		case err == nil:
			res := &SolveResult{
				Algorithm:  ss.algoName,
				Deadline:   prob.Deadline,
				Cost:       sol.Cost,
				Length:     sol.Length,
				Assignment: assignmentInts(sol.Assign),
				Quality:    string(hap.QualityExact),
				ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
			}
			if ss.anytime {
				gap, lb := 0.0, sol.Cost
				res.Gap = &gap
				res.LowerBound = &lb
				res.Stage = "tree"
			}
			out.res = res
			s.pushFrame(ss, "incumbent", sseIncumbent{Gen: gen, Stage: "tree", Cost: sol.Cost, LowerBound: sol.Cost})
		case isInfeasible(err):
			out.infeasible = true
		default:
			return nil, &apiError{Status: 500, Msg: err.Error()}
		}
		return out, nil
	}

	out.source = "solve"
	var sol hap.Solution
	var ar hap.AnytimeResult
	var err error
	if ss.anytime {
		obs := func(u hap.IncumbentUpdate) {
			s.pushFrame(ss, "incumbent", sseIncumbent{Gen: gen, Stage: u.Stage, Cost: u.Cost, LowerBound: u.LowerBound, Gap: u.Gap})
		}
		ar, err = hap.SolveAnytime(ctx, prob, hap.AnytimeOptions{Observer: obs})
		sol = ar.Solution
	} else {
		sol, err = hap.SolveCtx(ctx, prob, ss.algo)
	}
	switch {
	case err == nil:
	case isInfeasible(err):
		out.infeasible = true
		return out, nil
	default:
		return nil, classifySolveErr(err)
	}
	res := &SolveResult{
		Algorithm:  ss.algoName,
		Deadline:   prob.Deadline,
		Cost:       sol.Cost,
		Length:     sol.Length,
		Assignment: assignmentInts(sol.Assign),
		Quality:    staticQuality(&solveSpec{prob: prob, algoName: ss.algoName}),
		ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if ss.anytime {
		res.Quality = string(ar.Quality)
		gap, lb := ar.Gap, ar.LowerBound
		res.Gap = &gap
		res.LowerBound = &lb
		res.Stage = ar.Stage
	}
	out.res = res
	return out, nil
}

// commitSession applies a staged patch (nil for the initial PUT) to the
// session's authoritative state, re-digests the instance in place through
// the retained canonical encoding, swaps the frontier-cache pin onto the new
// instance digest, publishes the view and pushes the terminal "settled" SSE
// frame. Runs under ss.opMu.
func (s *Server) commitSession(ss *session, st *stagedPatch, out *solveOut, gen int64) SessionView {
	if st != nil {
		for v, re := range st.rows {
			ss.table.MustSet(v, re.times, re.costs)
			//hetsynth:ignore retval SetRow checks only coordinates, which
			// staging already validated against the same dimensions.
			_ = ss.enc.SetRow(v, re.times, re.costs)
		}
		if st.structural {
			ss.edges = st.edges
			ss.graph = st.graph
			ss.enc.SetGraph(st.graph)
		}
		ss.deadline = st.deadline
	}
	reqD, instD := ss.enc.Keys(ss.deadline, ss.algoName)

	// Pin the cached frontier curve of the instance the session now is (when
	// one exists), and release the pin on whatever it was before: the curve
	// a client warmed with stateless solves stays resident for the session's
	// lifetime, and eviction of the session rebalances the refcount to zero.
	wantPin := ""
	if ss.inc != nil {
		wantPin = "inst/" + instD
	}
	if wantPin != ss.pinKey {
		if ss.pinKey != "" {
			s.cache.release(ss.pinKey)
			ss.pinKey = ""
		}
		if wantPin != "" {
			if _, ok := s.cache.acquire(wantPin); ok {
				ss.pinKey = wantPin
			}
		}
	}

	ss.gen = gen
	view := SessionView{
		ID:            ss.id,
		Gen:           gen,
		Digest:        instD,
		RequestDigest: reqD,
		Algorithm:     ss.algoName,
		Deadline:      ss.deadline,
		Nodes:         len(ss.nodes),
		Edges:         len(ss.edges),
		Tree:          ss.inc != nil,
		Infeasible:    out.infeasible,
		Source:        out.source,
		Recomputed:    out.recomputed,
		Result:        out.res,
	}
	ss.publishView(view)

	settled := sseSettled{
		Gen:        gen,
		Digest:     instD,
		Infeasible: out.infeasible,
		Source:     out.source,
		Recomputed: out.recomputed,
	}
	if out.res != nil {
		settled.Quality = out.res.Quality
		settled.Cost = out.res.Cost
		if out.res.Gap != nil {
			settled.Gap = *out.res.Gap
		}
	}
	s.pushFrame(ss, "settled", settled)
	//hetsynth:ignore pinpair the pin transfers to the session (ss.pinKey) and
	// is released by the next commit's juggle or by evictSession.
	return view
}

// ---- lifecycle ----

// evictSession tears a session down exactly once: cancel its solves, drop it
// from the store, close its incremental solver, release its frontier-cache
// pin, and deliver a terminal "evicted" frame to every subscriber before
// closing their streams. Safe to call concurrently and repeatedly.
func (s *Server) evictSession(ss *session, reason string) {
	subs, first := ss.beginEvict()
	if !first {
		return
	}
	ss.cancel()
	s.sessions.remove(ss.id, ss)
	ss.opMu.Lock()
	if ss.inc != nil {
		ss.inc.Close()
		ss.inc = nil
	}
	if ss.pinKey != "" {
		s.cache.release(ss.pinKey)
		ss.pinKey = ""
	}
	ss.opMu.Unlock()
	if len(subs) > 0 {
		if data, err := json.Marshal(sseEvicted{Reason: reason}); err == nil {
			for _, sub := range subs {
				s.met.sseFrames.Add(1)
				if n := sub.offer(sseFrame{event: "evicted", data: data}); n > 0 {
					s.met.sseDropped.Add(int64(n))
				}
			}
		}
	}
	for _, sub := range subs {
		close(sub.done)
	}
	s.met.sessionsEvicted.Add(1)
}

// evictAllSessions evicts every live session; Run and Close call it before
// waiting on in-flight handlers so open SSE streams terminate and shutdown
// is not parked behind them.
func (s *Server) evictAllSessions(reason string) {
	for _, ss := range s.sessions.all() {
		s.evictSession(ss, reason)
	}
}

// enforceSessionMax evicts the longest-idle sessions (never keep) until the
// store fits the configured cap.
func (s *Server) enforceSessionMax(keep *session) {
	for s.sessions.len() > s.cfg.SessionMax {
		var victim *session
		var oldest time.Time
		for _, ss := range s.sessions.all() {
			if ss == keep {
				continue
			}
			if t := ss.idleSince(); victim == nil || t.Before(oldest) {
				victim, oldest = ss, t
			}
		}
		if victim == nil {
			return
		}
		s.evictSession(victim, "lru")
	}
}

// sessionJanitor sweeps for TTL-expired sessions until server shutdown. Its
// goroutine is joined through sessWG by Run and Close.
func (s *Server) sessionJanitor() {
	interval := s.cfg.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			cut := time.Now().Add(-s.cfg.SessionTTL)
			for _, ss := range s.sessions.all() {
				if ss.idleSince().Before(cut) {
					s.evictSession(ss, "ttl")
				}
			}
		}
	}
}

// sessionBudget resolves a session operation's compute budget from an
// effective timeout_ms (0 = server default), clamped by the server max.
func (s *Server) sessionBudget(timeoutMS int) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// ---- HTTP handlers ----

// handleSessionPut creates (201) or replaces (200) the session at {id} from
// a standard solve request body, runs the initial solve, and returns the
// session view. Replacing evicts the previous session under the id.
func (s *Server) handleSessionPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validSessionID(id) {
		s.met.badRequests.Add(1)
		writeErr(w, badRequest("invalid instance id (want 1-64 chars of [A-Za-z0-9._-])"))
		return
	}
	spec, err := decodeSolveRequest(r.Body)
	if err != nil {
		s.met.badRequests.Add(1)
		writeErr(w, err.(*apiError))
		return
	}
	if spec.schedule {
		s.met.badRequests.Add(1)
		writeErr(w, badRequest("sessions solve phase 1 only: unset schedule"))
		return
	}
	if aerr := applyComputeDeadline(spec, r); aerr != nil {
		s.met.badRequests.Add(1)
		writeErr(w, aerr)
		return
	}
	if s.draining.Load() {
		writeErr(w, &apiError{Status: 503, Msg: "server is draining"})
		return
	}

	ss := &session{
		id:       id,
		algoName: spec.algoName,
		algo:     spec.algo,
		anytime:  spec.anytime,
		timeout:  spec.timeout,
		nodes:    spec.prob.Graph.Nodes(),
		edges:    spec.prob.Graph.Edges(),
		graph:    spec.prob.Graph,
		table:    spec.prob.Table,
		deadline: spec.prob.Deadline,
		enc:      canon.NewInstanceEnc(spec.prob.Graph, spec.prob.Table),
		lastUsed: time.Now(),
	}
	ss.ctx, ss.cancel = context.WithCancel(s.baseCtx)
	if spec.tree {
		if inc, ierr := hap.NewIncrementalSolver(spec.prob); ierr == nil {
			ss.inc = inc
		}
	}

	ctx, cancel := context.WithTimeout(ss.ctx, s.solveBudget(spec))
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	if s.preSolve != nil {
		s.preSolve(ctx)
	}
	var out *solveOut
	var aerr *apiError
	if cerr := ctx.Err(); cerr != nil {
		aerr = classifySolveErr(cerr)
	} else {
		out, aerr = s.solveSession(ctx, ss, spec.prob, 1)
	}
	if aerr != nil {
		ss.cancel()
		if ss.inc != nil {
			ss.inc.Close()
			ss.inc = nil
		}
		writeErr(w, aerr)
		return
	}
	view := s.commitSession(ss, nil, out, 1)

	status := http.StatusCreated
	if old := s.sessions.put(id, ss); old != nil {
		s.evictSession(old, "replaced")
		status = http.StatusOK
	}
	s.met.sessionsCreated.Add(1)
	s.enforceSessionMax(ss)
	writeJSON(w, status, view)
}

// handleSessionPatch applies a delta batch to the session at {id}: stage and
// validate every op (400 leaves the state untouched), re-solve — through the
// live incremental solver when the instance is tree-shaped — and commit,
// returning the new session view.
func (s *Server) handleSessionPatch(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "no such instance session"})
		return
	}
	ss.touch()

	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req PatchRequest
	if derr := dec.Decode(&req); derr != nil {
		s.met.badRequests.Add(1)
		s.met.patchesRejected.Add(1)
		writeErr(w, badRequest("invalid patch JSON: %v", derr))
		return
	}
	if dec.More() {
		s.met.badRequests.Add(1)
		s.met.patchesRejected.Add(1)
		writeErr(w, badRequest("trailing data after patch object"))
		return
	}
	if req.TimeoutMS < 0 || len(req.Ops) > maxPatchOps {
		s.met.badRequests.Add(1)
		s.met.patchesRejected.Add(1)
		writeErr(w, badRequest("invalid patch: timeout_ms must be >= 0 and ops at most %d", maxPatchOps))
		return
	}
	headerMS, aerr := computeDeadlineMS(r)
	if aerr != nil {
		s.met.badRequests.Add(1)
		s.met.patchesRejected.Add(1)
		writeErr(w, aerr)
		return
	}

	ss.opMu.Lock()
	defer ss.opMu.Unlock()
	if ss.isEvicted() {
		writeErr(w, &apiError{Status: 404, Msg: "instance session evicted"})
		return
	}

	st, aerr := ss.stage(req.Ops)
	if aerr != nil {
		s.met.patchesRejected.Add(1)
		writeErr(w, aerr)
		return
	}
	s.met.patches.Add(1)

	timeout := ss.timeout
	if req.TimeoutMS > 0 {
		timeout = req.TimeoutMS
	}
	if headerMS > 0 && (timeout == 0 || headerMS < timeout) {
		timeout = headerMS
	}
	ctx, cancel := context.WithTimeout(ss.ctx, s.sessionBudget(timeout))
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	if s.preSolve != nil {
		s.preSolve(ctx)
	}
	if cerr := ctx.Err(); cerr != nil {
		// Nothing staged has touched the session yet: a dead budget or a gone
		// client aborts with the state exactly as it was.
		writeErr(w, classifySolveErr(cerr))
		return
	}

	s.reconcileInc(ss, st)
	prob := hap.Problem{Graph: st.graph, Table: st.stagedTable(ss.table), Deadline: st.deadline}
	out, aerr := s.solveSession(ctx, ss, prob, ss.gen+1)
	if aerr != nil {
		// The solve failed (budget, cancellation, algorithm/shape mismatch):
		// the authoritative state is unchanged, so drop the solver — it may
		// have absorbed staged deltas — and let the next patch rebuild it.
		if ss.inc != nil {
			ss.inc.Close()
			ss.inc = nil
		}
		writeErr(w, aerr)
		return
	}
	view := s.commitSession(ss, st, out, ss.gen+1)
	writeJSON(w, http.StatusOK, view)
}

// handleSessionGet returns the session view at {id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "no such instance session"})
		return
	}
	ss.touch()
	writeJSON(w, http.StatusOK, ss.currentView())
}

// handleSessionDelete evicts the session at {id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "no such instance session"})
		return
	}
	s.evictSession(ss, "deleted")
	writeJSON(w, http.StatusOK, map[string]any{"evicted": true})
}

// isInfeasible reports whether a solver error is a proven-infeasible
// verdict, which sessions commit as state rather than surface as a failure.
func isInfeasible(err error) bool { return errors.Is(err, hap.ErrInfeasible) }
