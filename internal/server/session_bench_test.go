package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// benchTreeN is the instance size for the session benchmarks: a balanced
// binary out-tree of 2047 nodes (11 full levels) with K=4 FU types.
const benchTreeN = 2047

// benchTreeBody renders the 2047-node tree instance as a solve-request body
// (shared by the session PUT and the from-scratch comparison), with node
// `vary`'s row set by salt — varying the salt makes a fresh instance digest.
func benchTreeBody(vary, salt int) string {
	var sb strings.Builder
	sb.WriteString(`{"graph":{"nodes":[`)
	for v := 0; v < benchTreeN; v++ {
		if v > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"name":"n%d","op":"op"}`, v)
	}
	sb.WriteString(`],"edges":[`)
	first := true
	for v := 0; v < benchTreeN; v++ {
		for _, c := range []int{2*v + 1, 2*v + 2} {
			if c >= benchTreeN {
				continue
			}
			if !first {
				sb.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&sb, `{"from":"n%d","to":"n%d"}`, v, c)
		}
	}
	sb.WriteString(`]},"table":{"time":[`)
	for v := 0; v < benchTreeN; v++ {
		if v > 0 {
			sb.WriteByte(',')
		}
		t1, t2 := 1+(v%3), 2+(v%2)
		if v == vary {
			t1 = 1 + salt%3
		}
		fmt.Fprintf(&sb, `[%d,%d,%d,%d]`, t1, t2, 6, 12)
	}
	sb.WriteString(`],"cost":[`)
	for v := 0; v < benchTreeN; v++ {
		if v > 0 {
			sb.WriteByte(',')
		}
		c1 := int64(20 + v%7)
		if v == vary {
			c1 = int64(20 + salt%13)
		}
		fmt.Fprintf(&sb, `[%d,%d,%d,%d]`, c1, 9+v%5, 4, 1)
	}
	sb.WriteString(`]},"deadline":45}`)
	return sb.String()
}

func benchDo(b *testing.B, client *http.Client, method, url, body string) {
	b.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 && resp.StatusCode != 201 {
		var m map[string]any
		//hetsynth:ignore retval decode only feeds the failure message.
		_ = json.NewDecoder(resp.Body).Decode(&m)
		b.Fatalf("%s %s: status %d: %v", method, url, resp.StatusCode, m)
	}
	//hetsynth:ignore retval draining the body to reuse the connection.
	_, _ = io.Copy(io.Discard, resp.Body)
}

// BenchmarkHTTPPatchSolve measures the session tentpole's headline: a
// single-row PATCH on a live 2047-node tree session, re-solved through the
// incremental solver's dirty-path DP (recompute O(path), re-digest in
// place). Compare against BenchmarkHTTPSolveUncachedTree — the identical
// edit expressed as a fresh full solve — for the session speedup.
func BenchmarkHTTPPatchSolve(b *testing.B) {
	ts, stop := newBenchServer()
	defer stop()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	benchDo(b, client, "PUT", ts.URL+"/v1/instances/bench", benchTreeBody(0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"set_row","node":0,"time":[%d,2,3,4],"cost":[%d,9,4,1]}]}`,
			1+i%3, 20+i%13)
		benchDo(b, client, "PATCH", ts.URL+"/v1/instances/bench", body)
	}
}

// BenchmarkHTTPSolveUncachedTree is the from-scratch baseline for
// BenchmarkHTTPPatchSolve: every iteration submits the same 2047-node tree
// with one row changed, so each request is a fresh digest and runs the full
// frontier DP (decode, canonicalize, solve, cache).
func BenchmarkHTTPSolveUncachedTree(b *testing.B) {
	ts, stop := newBenchServer()
	defer stop()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchDo(b, client, "POST", ts.URL+"/v1/solve", benchTreeBody(0, i))
	}
}
