package server

import (
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fuzzSessionBody is a tiny 3-node chain instance; every fuzz iteration gets
// its own session built from it.
const fuzzSessionBody = `{"graph":{"nodes":[{"name":"a","op":"op"},{"name":"b","op":"op"},{"name":"c","op":"op"}],` +
	`"edges":[{"from":"a","to":"b"},{"from":"b","to":"c"}]},` +
	`"table":{"time":[[1,2],[1,2],[1,2]],"cost":[[5,1],[5,1],[5,1]]},"deadline":6}`

// FuzzPatchInstance throws arbitrary PATCH bodies at a live session. The
// contract under attack: an invalid delta — dangling node ids,
// cycle-creating edges, negative times, garbage JSON — yields exactly a 400
// and leaves the session state untouched (same generation, same digest, and
// a re-solve reproduces the same answer), while an accepted patch leaves the
// session self-consistent. Nothing may panic, and no status outside
// {200, 400} may escape.
func FuzzPatchInstance(f *testing.F) {
	f.Add(`{"ops":[]}`)
	f.Add(`{"ops":[{"op":"set_row","node":1,"time":[2,3],"cost":[4,2]}]}`)
	f.Add(`{"ops":[{"op":"set_row","node":99,"time":[1,1],"cost":[1,1]}]}`)
	f.Add(`{"ops":[{"op":"set_row","node":0,"time":[-1,2],"cost":[1,1]}]}`)
	f.Add(`{"ops":[{"op":"add_edge","from":2,"to":0,"delays":0}]}`)
	f.Add(`{"ops":[{"op":"add_edge","from":0,"to":7}]}`)
	f.Add(`{"ops":[{"op":"remove_edge","from":0,"to":1}]}`)
	f.Add(`{"ops":[{"op":"remove_edge","from":2,"to":1}]}`)
	f.Add(`{"ops":[{"op":"set_deadline","deadline":-3}]}`)
	f.Add(`{"ops":[{"op":"set_deadline","deadline":1}]}`)
	f.Add(`{"ops":[{"op":"add_edge","from":1,"to":1,"delays":0}]}`)
	f.Add(`{"ops":[{"op":"set_row","node":0,"time":[1,1],"cost":[1,1]},{"op":"nonsense"}]}`)
	f.Add(`{"ops":[`)
	f.Add(`{"ops":[],"timeout_ms":-5}`)
	f.Add(`{"ops":[]}{"x":1}`)

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(func() { ts.Close(); s.Close() })
	var seq atomic.Int64

	f.Fuzz(func(t *testing.T, body string) {
		id := fmt.Sprintf("fz%d", seq.Add(1))
		code, base := postJSON(t, ts, "PUT", "/v1/instances/"+id, fuzzSessionBody)
		if code != 201 {
			t.Fatalf("PUT: status %d: %v", code, base)
		}
		baseRes := base["result"].(map[string]any)

		code, resp := postJSON(t, ts, "PATCH", "/v1/instances/"+id, body)
		switch code {
		case 200:
			// Accepted: the committed view must be self-consistent — a GET
			// reads back the same state the patch returned.
			gcode, got := postJSON(t, ts, "GET", "/v1/instances/"+id, "")
			if gcode != 200 || got["gen"] != resp["gen"] || got["digest"] != resp["digest"] {
				t.Fatalf("accepted patch not readable back: %v vs %v", resp, got)
			}
		case 400:
			// Rejected: nothing moved. Same generation and digest, and an
			// empty re-solve patch reproduces the original answer exactly.
			gcode, got := postJSON(t, ts, "GET", "/v1/instances/"+id, "")
			if gcode != 200 {
				t.Fatalf("GET after rejection: status %d", gcode)
			}
			if got["gen"] != base["gen"] || got["digest"] != base["digest"] {
				t.Fatalf("rejected patch mutated state: gen %v→%v digest %v→%v (body %q)",
					base["gen"], got["gen"], base["digest"], got["digest"], body)
			}
			rcode, re := postJSON(t, ts, "PATCH", "/v1/instances/"+id, `{"ops":[]}`)
			if rcode != 200 {
				t.Fatalf("re-solve after rejection: status %d: %v", rcode, re)
			}
			if re["digest"] != base["digest"] {
				t.Fatalf("re-solve digest drifted after rejection: %v vs %v", re["digest"], base["digest"])
			}
			reRes := re["result"].(map[string]any)
			if reRes["cost"] != baseRes["cost"] {
				t.Fatalf("re-solve cost drifted after rejection: %v vs %v (body %q)", reRes["cost"], baseRes["cost"], body)
			}
		default:
			t.Fatalf("PATCH returned status %d (body %q): %v", code, body, resp)
		}
		if dcode, _ := postJSON(t, ts, "DELETE", "/v1/instances/"+id, ""); dcode != 200 {
			t.Fatalf("DELETE: status %d", dcode)
		}
	})
}
