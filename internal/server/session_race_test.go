package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSessionConcurrencySoak hammers a handful of session ids from
// concurrent patchers, SSE subscribers, and re-creators while an aggressive
// TTL janitor evicts underneath them. Run under -race this is the
// concurrency soak for the session table, the two-lock session design, the
// SSE fan-out and the eviction teardown. Correctness bar: no data race, no
// deadlock, every response is one of the contract statuses, and at the end
// the pin ledger balances back to zero.
func TestSessionConcurrencySoak(t *testing.T) {
	s := New(Config{SessionTTL: 30 * time.Millisecond, SessionEventBuffer: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const ids = 3
	const clients = 6
	deadline := time.Now().Add(900 * time.Millisecond)
	var wg sync.WaitGroup

	put := func(cl *http.Client, id string) int {
		req, _ := http.NewRequest("PUT", ts.URL+"/v1/instances/"+id, strings.NewReader(fuzzSessionBody))
		resp, err := cl.Do(req)
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		//hetsynth:ignore retval draining the body to reuse the connection.
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	// Patchers: random valid single-op patches; 404 (evicted) → re-PUT.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			cl := ts.Client()
			for time.Now().Before(deadline) {
				id := fmt.Sprintf("soak%d", rng.Intn(ids))
				body := fmt.Sprintf(`{"ops":[{"op":"set_row","node":%d,"time":[%d,%d],"cost":[%d,%d]}]}`,
					rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(3), rng.Intn(9), rng.Intn(4))
				req, _ := http.NewRequest("PATCH", ts.URL+"/v1/instances/"+id, strings.NewReader(body))
				resp, err := cl.Do(req)
				if err != nil {
					continue
				}
				code := resp.StatusCode
				//hetsynth:ignore retval draining the body to reuse the connection.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch code {
				case 200:
				case 404:
					if pc := put(cl, id); pc != 0 && pc != 200 && pc != 201 && pc != 503 {
						t.Errorf("re-PUT %s: status %d", id, pc)
					}
				default:
					t.Errorf("PATCH %s: unexpected status %d", id, code)
				}
			}
		}(c)
	}

	// Subscribers: attach an event stream, read a few frames, hang up.
	for c := 0; c < clients/2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for time.Now().Before(deadline) {
				id := fmt.Sprintf("soak%d", rng.Intn(ids))
				resp, err := ts.Client().Get(ts.URL + "/v1/instances/" + id + "/events")
				if err != nil {
					continue
				}
				if resp.StatusCode == 200 {
					buf := make([]byte, 256)
					for i := 0; i < 1+rng.Intn(3); i++ {
						if _, err := resp.Body.Read(buf); err != nil {
							break
						}
					}
				}
				resp.Body.Close()
			}
		}(c)
	}

	// Deleters: race explicit eviction against the TTL janitor and patchers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for time.Now().Before(deadline) {
			id := fmt.Sprintf("soak%d", rng.Intn(ids))
			req, _ := http.NewRequest("DELETE", ts.URL+"/v1/instances/"+id, nil)
			if resp, err := ts.Client().Do(req); err == nil {
				//hetsynth:ignore retval draining the body to reuse the connection.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	ts.Close()
	s.Close()

	snap := s.Metrics()
	if snap.SessionsActive != 0 {
		t.Errorf("sessions still active after shutdown: %d", snap.SessionsActive)
	}
	if snap.SessionsCreated != snap.SessionsEvicted {
		t.Errorf("session ledger unbalanced: created %d, evicted %d", snap.SessionsCreated, snap.SessionsEvicted)
	}
	for i, pins := range s.cache.pinnedByShard() {
		if pins != 0 {
			t.Errorf("cache shard %d: %d session pin(s) leaked", i, pins)
		}
	}
}
