package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// diamondSessionBody is a 4-node diamond — two zero-delay parents on the
// join, so neither forest orientation holds and session re-solves take the
// full anytime ladder (multiple incumbent frames per solve).
const diamondSessionBody = `{"graph":{"nodes":[{"name":"a","op":"op"},{"name":"b","op":"op"},{"name":"c","op":"op"},{"name":"d","op":"op"}],` +
	`"edges":[{"from":"a","to":"b"},{"from":"a","to":"c"},{"from":"b","to":"d"},{"from":"c","to":"d"}]},` +
	`"table":{"time":[[1,3],[1,3],[1,3],[1,3]],"cost":[[9,2],[9,2],[9,2],[9,2]]},"deadline":7,"algorithm":"anytime"}`

// sseClient reads an event stream line by line.
type sseClient struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openSSE(t *testing.T, ts *httptest.Server, id string) *sseClient {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/instances/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events content-type %q", ct)
	}
	return &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body)}
}

func (c *sseClient) close() { c.resp.Body.Close() }

// next returns the next (event, payload) pair, or ok=false at stream end.
func (c *sseClient) next(t *testing.T) (string, map[string]any, bool) {
	t.Helper()
	event := ""
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var m map[string]any
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &m); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			return event, m, true
		}
	}
	return "", nil, false
}

// TestSessionSSEContract pins the stream framing: an initial "state" frame,
// per-improvement "incumbent" frames with strictly decreasing costs within a
// generation, a terminal "settled" frame carrying quality and final gap that
// agrees with the last incumbent, and a final "evicted" frame on DELETE.
func TestSessionSSEContract(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, view := postJSON(t, ts, "PUT", "/v1/instances/sse", diamondSessionBody)
	if code != 201 {
		t.Fatalf("PUT: status %d: %v", code, view)
	}

	c := openSSE(t, ts, "sse")
	defer c.close()
	event, state, ok := c.next(t)
	if !ok || event != "state" {
		t.Fatalf("first frame = %q (ok=%v), want state", event, ok)
	}
	if state["digest"] != view["digest"] {
		t.Fatalf("state frame digest %v != view digest %v", state["digest"], view["digest"])
	}

	code, pv := postJSON(t, ts, "PATCH", "/v1/instances/sse",
		`{"ops":[{"op":"set_row","node":3,"time":[1,2],"cost":[8,3]}]}`)
	if code != 200 {
		t.Fatalf("PATCH: status %d: %v", code, pv)
	}

	var costs []int64
	var settled map[string]any
	for settled == nil {
		event, m, ok := c.next(t)
		if !ok {
			t.Fatal("stream ended before the settled frame")
		}
		if gen, _ := m["gen"].(float64); gen != 2 {
			continue // frames from the initial solve's generation
		}
		switch event {
		case "incumbent":
			costs = append(costs, int64(m["cost"].(float64)))
		case "settled":
			settled = m
		}
	}
	if len(costs) == 0 {
		t.Fatal("no incumbent frames for the patch generation")
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Fatalf("incumbent costs not strictly decreasing: %v", costs)
		}
	}
	res := pv["result"].(map[string]any)
	if got := int64(settled["cost"].(float64)); got != int64(res["cost"].(float64)) || got != costs[len(costs)-1] {
		t.Fatalf("settled cost %d, result %v, last incumbent %d", got, res["cost"], costs[len(costs)-1])
	}
	if q, _ := settled["quality"].(string); q == "" {
		t.Fatal("settled frame missing quality")
	}
	if gap, ok := settled["gap"].(float64); !ok || gap < 0 {
		t.Fatalf("settled frame gap = %v, want a finite non-negative number", settled["gap"])
	}
	if settled["digest"] != pv["digest"] {
		t.Fatalf("settled digest %v != view digest %v", settled["digest"], pv["digest"])
	}

	if code, _ := postJSON(t, ts, "DELETE", "/v1/instances/sse", ""); code != 200 {
		t.Fatal("DELETE failed")
	}
	for {
		event, m, ok := c.next(t)
		if !ok {
			t.Fatal("stream ended without an evicted frame")
		}
		if event == "evicted" {
			if m["reason"] != "deleted" {
				t.Fatalf("evicted reason %v, want deleted", m["reason"])
			}
			break
		}
	}
	if _, _, ok := c.next(t); ok {
		t.Fatal("frames after the evicted terminal frame")
	}
}

// TestSessionPatchDisconnectCancelsSolver proves a PATCH client hanging up
// cancels the solver context: preSolve captures the solve ctx and blocks
// until it dies, so the request only completes because the disconnect
// propagated.
func TestSessionPatchDisconnectCancelsSolver(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if code, v := postJSON(t, ts, "PUT", "/v1/instances/dc", diamondSessionBody); code != 201 {
		t.Fatalf("PUT: status %d: %v", code, v)
	}

	captured := make(chan context.Context, 1)
	s.preSolve = func(ctx context.Context) {
		select {
		case captured <- ctx:
		default:
			return // the PUT above or a retry; only the first capture blocks
		}
		<-ctx.Done()
	}

	reqCtx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	req, err := http.NewRequestWithContext(reqCtx, "PATCH", ts.URL+"/v1/instances/dc", strings.NewReader(`{"ops":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	var solveCtx context.Context
	select {
	case solveCtx = <-captured:
	case <-time.After(5 * time.Second):
		t.Fatal("patch never reached the solver")
	}
	cancelReq() // client hangs up mid-solve
	select {
	case <-solveCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client disconnect did not cancel the solver context")
	}
	<-done
	s.preSolve = nil

	// The aborted patch must not have corrupted the session: state unchanged,
	// and the next patch solves normally.
	if code, v := postJSON(t, ts, "PATCH", "/v1/instances/dc", `{"ops":[]}`); code != 200 {
		t.Fatalf("patch after disconnect: status %d: %v", code, v)
	}
}

// TestSessionSlowConsumerDropsOldest pins the bounded-mailbox contract: a
// subscriber that never drains its mailbox cannot block patches — offer
// sheds the oldest buffered frames (counted in sse_dropped) and the newest
// frames win. The subscriber attaches below the HTTP layer on purpose: over
// a socket the handler plus the kernel buffer absorb far more than the
// mailbox depth, so the drop path would need megabytes of frames to engage.
func TestSessionSlowConsumerDropsOldest(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionEventBuffer: 2})
	if code, v := postJSON(t, ts, "PUT", "/v1/instances/slow", diamondSessionBody); code != 201 {
		t.Fatalf("PUT: status %d: %v", code, v)
	}
	ss, ok := s.sessions.get("slow")
	if !ok {
		t.Fatal("session not in store")
	}
	sub, ok := ss.subscribe(2)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer ss.unsubscribe(sub)

	// Each patch pushes incumbent + settled frames into the 2-deep mailbox
	// that nobody reads; every patch must still complete promptly.
	const patches = 6
	for i := 0; i < patches; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"set_row","node":3,"time":[1,2],"cost":[%d,%d]}]}`, 9+i, 2+i)
		done := make(chan int, 1)
		go func() {
			code, _ := postJSON(t, ts, "PATCH", "/v1/instances/slow", body)
			done <- code
		}()
		select {
		case code := <-done:
			if code != 200 {
				t.Fatalf("patch %d: status %d", i, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("patch %d blocked behind a slow SSE consumer", i)
		}
	}
	if snap := s.Metrics(); snap.SSEDropped == 0 {
		t.Fatal("slow consumer overflow did not shed any frames")
	}
	// Drop-oldest means the mailbox holds the tail of the stream: its last
	// frame must be the final generation's settled frame.
	var last sseFrame
	for {
		select {
		case f := <-sub.ch:
			last = f
		default:
			if last.event != "settled" {
				t.Fatalf("mailbox tail is %q, want the newest settled frame", last.event)
			}
			var m map[string]any
			if err := json.Unmarshal(last.data, &m); err != nil {
				t.Fatal(err)
			}
			if gen := m["gen"].(float64); int(gen) != patches+1 {
				t.Fatalf("tail settled gen %v, want %d (newest wins)", gen, patches+1)
			}
			return
		}
	}
}

// TestSessionSSENoGoroutineLeak opens and tears down event streams (both by
// client disconnect and by eviction) and asserts the handler goroutines all
// exit.
func TestSessionSSENoGoroutineLeak(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, v := postJSON(t, ts, "PUT", "/v1/instances/leak", diamondSessionBody); code != 201 {
		t.Fatalf("PUT: status %d: %v", code, v)
	}
	before := runtime.NumGoroutine()

	// Wave 1: subscribers torn down by client disconnect.
	var clients []*sseClient
	for i := 0; i < 4; i++ {
		c := openSSE(t, ts, "leak")
		if event, _, ok := c.next(t); !ok || event != "state" {
			t.Fatal("no state frame")
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		c.close()
	}

	// Wave 2: subscribers torn down by eviction.
	clients = nil
	for i := 0; i < 4; i++ {
		c := openSSE(t, ts, "leak")
		defer c.close()
		if event, _, ok := c.next(t); !ok || event != "state" {
			t.Fatal("no state frame")
		}
		clients = append(clients, c)
	}
	if code, _ := postJSON(t, ts, "DELETE", "/v1/instances/leak", ""); code != 200 {
		t.Fatal("DELETE failed")
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *sseClient) {
			defer wg.Done()
			//hetsynth:ignore retval draining to EOF; the stream's content was
			// already validated above.
			_, _ = io.Copy(io.Discard, c.resp.Body)
		}(c)
	}
	wg.Wait()
	for _, c := range clients {
		c.close()
	}
	// Idle keep-alive connections each hold client transport goroutines;
	// close them so the settle loop measures only server-side streams.
	ts.Client().CloseIdleConnections()

	settle := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked by SSE streams: %d before, %d after", before, after)
	}
	ts.Close()
	s.Close()
}
