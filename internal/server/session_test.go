package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hetsynth/internal/canon"
	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// sessMirror is the test's client-side replica of a session's state; the
// differential soak patches the server and the mirror in lockstep and
// cross-checks solutions and digests after every step.
type sessMirror struct {
	n        int
	k        int
	edges    []dfg.Edge
	time     [][]int
	cost     [][]int64
	deadline int
}

func (m *sessMirror) graph(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New()
	g.Grow(m.n, len(m.edges))
	for v := 0; v < m.n; v++ {
		g.MustAddNode(fmt.Sprintf("n%d", v), "op")
	}
	for _, e := range m.edges {
		if err := g.AddEdge(e.From, e.To, e.Delays); err != nil {
			t.Fatalf("mirror graph edge (%d,%d): %v", e.From, e.To, err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("mirror graph invalid: %v", err)
	}
	return g
}

func (m *sessMirror) table() *fu.Table {
	tab := fu.NewTable(m.n, m.k)
	for v := 0; v < m.n; v++ {
		tab.MustSet(v, m.time[v], m.cost[v])
	}
	return tab
}

// putBody renders the mirror as a PUT /v1/instances body.
func (m *sessMirror) putBody(t *testing.T) string {
	t.Helper()
	type jnode struct {
		Name string `json:"name"`
		Op   string `json:"op"`
	}
	type jedge struct {
		From   string `json:"from"`
		To     string `json:"to"`
		Delays int    `json:"delays"`
	}
	nodes := make([]jnode, m.n)
	for v := 0; v < m.n; v++ {
		nodes[v] = jnode{Name: fmt.Sprintf("n%d", v), Op: "op"}
	}
	edges := make([]jedge, len(m.edges))
	for i, e := range m.edges {
		edges[i] = jedge{From: fmt.Sprintf("n%d", e.From), To: fmt.Sprintf("n%d", e.To), Delays: e.Delays}
	}
	body, err := json.Marshal(map[string]any{
		"graph":    map[string]any{"nodes": nodes, "edges": edges},
		"table":    map[string]any{"time": m.time, "cost": m.cost},
		"deadline": m.deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// oracle re-solves the mirror from scratch the way the session's own solve
// path would: the optimal tree DP on forest shapes (the incremental solver
// is bit-identical to TreeAssign), the auto dispatch otherwise (which is
// deterministic — repeat — on general DAGs).
func (m *sessMirror) oracle(t *testing.T) (hap.Solution, bool) {
	t.Helper()
	g := m.graph(t)
	prob := hap.Problem{Graph: g, Table: m.table(), Deadline: m.deadline}
	var sol hap.Solution
	var err error
	if g.IsOutForest() || g.IsInForest() {
		sol, err = hap.TreeAssign(prob)
	} else {
		sol, err = hap.SolveCtx(context.Background(), prob, hap.AlgoAuto)
	}
	switch {
	case err == nil:
		return sol, false
	case isInfeasible(err):
		return hap.Solution{}, true
	default:
		t.Fatalf("oracle solve: %v", err)
		return hap.Solution{}, false
	}
}

func randMirror(rng *rand.Rand) *sessMirror {
	m := &sessMirror{n: 4 + rng.Intn(9), k: 2 + rng.Intn(3)}
	for v := 1; v < m.n; v++ {
		if rng.Intn(4) > 0 {
			m.edges = append(m.edges, dfg.Edge{From: dfg.NodeID(rng.Intn(v)), To: dfg.NodeID(v), Delays: rng.Intn(2)})
		}
	}
	m.time = make([][]int, m.n)
	m.cost = make([][]int64, m.n)
	for v := 0; v < m.n; v++ {
		m.time[v] = make([]int, m.k)
		m.cost[v] = make([]int64, m.k)
		for j := 0; j < m.k; j++ {
			m.time[v][j] = 1 + rng.Intn(12)
			m.cost[v][j] = int64(rng.Intn(80))
		}
	}
	m.deadline = 10 + rng.Intn(60)
	return m
}

// checkView asserts a committed session view against the mirror: the
// solution must be bit-identical to the from-scratch oracle, and both
// digests must match the whole-instance canonical digests of the mirror.
func (m *sessMirror) checkView(t *testing.T, view map[string]any, step string) {
	t.Helper()
	wantSol, wantInf := m.oracle(t)
	gotInf, _ := view["infeasible"].(bool)
	if gotInf != wantInf {
		t.Fatalf("%s: infeasible = %v, oracle says %v (view %v)", step, gotInf, wantInf, view)
	}
	if !wantInf {
		res, ok := view["result"].(map[string]any)
		if !ok {
			t.Fatalf("%s: feasible view missing result: %v", step, view)
		}
		if int64(res["cost"].(float64)) != wantSol.Cost {
			t.Fatalf("%s: cost %v, oracle %d", step, res["cost"], wantSol.Cost)
		}
		assign := res["assignment"].([]any)
		if len(assign) != len(wantSol.Assign) {
			t.Fatalf("%s: assignment length %d, oracle %d", step, len(assign), len(wantSol.Assign))
		}
		for i, a := range assign {
			if int(a.(float64)) != int(wantSol.Assign[i]) {
				t.Fatalf("%s: assignment[%d] = %v, oracle %d", step, i, a, wantSol.Assign[i])
			}
		}
	}
	g := m.graph(t)
	tab := m.table()
	wantReq, wantInst := canon.Keys(g, tab, m.deadline, "auto")
	if view["digest"] != wantInst {
		t.Fatalf("%s: digest %v != whole-instance canon digest %s", step, view["digest"], wantInst)
	}
	if view["request_digest"] != wantReq {
		t.Fatalf("%s: request_digest %v != whole-instance canon key %s", step, view["request_digest"], wantReq)
	}
}

// randomPatch mutates the mirror and returns the equivalent PATCH ops. Every
// generated op is valid against the current mirror, so the server must
// accept the patch.
func (m *sessMirror) randomPatch(rng *rand.Rand) []map[string]any {
	nops := 1 + rng.Intn(3)
	var ops []map[string]any
	for len(ops) < nops {
		switch rng.Intn(5) {
		case 0, 1: // row edit (most common: the paper's module-selection knob)
			v := rng.Intn(m.n)
			times := make([]int, m.k)
			costs := make([]int64, m.k)
			for j := 0; j < m.k; j++ {
				times[j] = 1 + rng.Intn(12)
				costs[j] = int64(rng.Intn(80))
			}
			m.time[v] = times
			m.cost[v] = costs
			ops = append(ops, map[string]any{"op": "set_row", "node": v, "time": times, "cost": costs})
		case 2: // edge insertion; u<v zero-delay keeps the DAG valid, delayed edges always are
			u, v := rng.Intn(m.n), rng.Intn(m.n)
			if u == v {
				continue
			}
			delays := 0
			if u > v {
				if rng.Intn(2) == 0 {
					u, v = v, u
				} else {
					delays = 1 + rng.Intn(2)
				}
			}
			m.edges = append(m.edges, dfg.Edge{From: dfg.NodeID(u), To: dfg.NodeID(v), Delays: delays})
			ops = append(ops, map[string]any{"op": "add_edge", "from": u, "to": v, "delays": delays})
		case 3: // edge removal; mirror replicates the server's first-match rule
			if len(m.edges) == 0 {
				continue
			}
			e := m.edges[rng.Intn(len(m.edges))]
			for i, x := range m.edges {
				if x.From == e.From && x.To == e.To {
					m.edges = append(m.edges[:i:i], m.edges[i+1:]...)
					break
				}
			}
			ops = append(ops, map[string]any{"op": "remove_edge", "from": int(e.From), "to": int(e.To)})
		default: // deadline retarget
			d := 1 + rng.Intn(80)
			m.deadline = d
			ops = append(ops, map[string]any{"op": "set_deadline", "deadline": d})
		}
	}
	return ops
}

// TestSessionLifecycle covers the basic PUT/GET/PATCH/DELETE contract.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(7))
	m := randMirror(rng)

	code, view := postJSON(t, ts, "PUT", "/v1/instances/life", m.putBody(t))
	if code != 201 {
		t.Fatalf("PUT: status %d: %v", code, view)
	}
	if view["gen"].(float64) != 1 {
		t.Fatalf("PUT gen = %v, want 1", view["gen"])
	}
	m.checkView(t, view, "put")

	code, got := postJSON(t, ts, "GET", "/v1/instances/life", "")
	if code != 200 || got["digest"] != view["digest"] {
		t.Fatalf("GET: status %d digest %v, want 200/%v", code, got["digest"], view["digest"])
	}

	// Empty patch: a no-op re-solve bumps the generation but changes nothing.
	code, view = postJSON(t, ts, "PATCH", "/v1/instances/life", `{"ops":[]}`)
	if code != 200 || view["gen"].(float64) != 2 {
		t.Fatalf("empty PATCH: status %d gen %v, want 200/2", code, view["gen"])
	}
	m.checkView(t, view, "empty patch")

	// Re-PUT replaces: 200, generation resets.
	code, view = postJSON(t, ts, "PUT", "/v1/instances/life", m.putBody(t))
	if code != 200 || view["gen"].(float64) != 1 {
		t.Fatalf("re-PUT: status %d gen %v, want 200/1", code, view["gen"])
	}

	code, _ = postJSON(t, ts, "DELETE", "/v1/instances/life", "")
	if code != 200 {
		t.Fatalf("DELETE: status %d", code)
	}
	if code, _ = postJSON(t, ts, "GET", "/v1/instances/life", ""); code != 404 {
		t.Fatalf("GET after DELETE: status %d, want 404", code)
	}
	if code, _ = postJSON(t, ts, "PATCH", "/v1/instances/life", `{"ops":[]}`); code != 404 {
		t.Fatalf("PATCH after DELETE: status %d, want 404", code)
	}
}

// TestSessionDifferentialSoak drives 200+ randomized patch steps across many
// sessions, asserting after every step that the session's solution is
// bit-identical to a from-scratch solve of the equivalent whole instance and
// that its digests equal the whole-instance canonical digests. This is the
// tentpole's headline invariant: a patched session is indistinguishable from
// a fresh instance.
func TestSessionDifferentialSoak(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(23))
	const trials, steps = 25, 10 // 250 patch steps
	sawIncremental := false
	for trial := 0; trial < trials; trial++ {
		m := randMirror(rng)
		id := fmt.Sprintf("soak-%d", trial)
		code, view := postJSON(t, ts, "PUT", "/v1/instances/"+id, m.putBody(t))
		if code != 201 {
			t.Fatalf("trial %d PUT: status %d: %v", trial, code, view)
		}
		m.checkView(t, view, fmt.Sprintf("trial %d put", trial))
		for step := 0; step < steps; step++ {
			ops := m.randomPatch(rng)
			body, err := json.Marshal(map[string]any{"ops": ops})
			if err != nil {
				t.Fatal(err)
			}
			code, view := postJSON(t, ts, "PATCH", "/v1/instances/"+id, string(body))
			if code != 200 {
				t.Fatalf("trial %d step %d: PATCH status %d: %v (ops %v)", trial, step, code, view, ops)
			}
			m.checkView(t, view, fmt.Sprintf("trial %d step %d", trial, step))
			if view["source"] == "incremental" {
				sawIncremental = true
				if view["tree"] != true {
					t.Fatalf("trial %d step %d: incremental source on non-tree view", trial, step)
				}
			}
		}
		if code, _ := postJSON(t, ts, "DELETE", "/v1/instances/"+id, ""); code != 200 {
			t.Fatalf("trial %d DELETE: status %d", trial, code)
		}
	}
	if !sawIncremental {
		t.Fatal("soak never exercised the incremental solve path")
	}
}

// TestSessionDirtyPathRecompute asserts the O(dirty path) contract at the
// HTTP layer: on a deep chain, a single-row patch of the leaf re-solves only
// the nodes on its root path, not the whole instance.
func TestSessionDirtyPathRecompute(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 64
	m := &sessMirror{n: n, k: 2, deadline: 3 * n}
	for v := 1; v < n; v++ {
		m.edges = append(m.edges, dfg.Edge{From: dfg.NodeID(v - 1), To: dfg.NodeID(v)})
	}
	m.time = make([][]int, n)
	m.cost = make([][]int64, n)
	for v := 0; v < n; v++ {
		m.time[v] = []int{1, 2}
		m.cost[v] = []int64{5, 1}
	}
	code, view := postJSON(t, ts, "PUT", "/v1/instances/chain", m.putBody(t))
	if code != 201 {
		t.Fatalf("PUT: status %d: %v", code, view)
	}
	if view["source"] != "incremental" || int(view["recomputed"].(float64)) != n {
		t.Fatalf("PUT source/recomputed = %v/%v, want incremental/%d", view["source"], view["recomputed"], n)
	}
	// In the solver's out-forest orientation the chain's node 0 is the
	// shallow end: its dirty path is itself alone, so the patch must
	// recompute exactly one node out of 64.
	m.time[0] = []int{2, 3}
	m.cost[0] = []int64{7, 2}
	body := `{"ops":[{"op":"set_row","node":0,"time":[2,3],"cost":[7,2]}]}`
	code, view = postJSON(t, ts, "PATCH", "/v1/instances/chain", body)
	if code != 200 {
		t.Fatalf("PATCH: status %d: %v", code, view)
	}
	if rec := int(view["recomputed"].(float64)); rec != 1 {
		t.Fatalf("single-row patch recomputed %d of %d nodes, want 1 (the dirty path)", rec, n)
	}
	m.checkView(t, view, "chain patch")
}

// TestSessionRejectionLeavesStateUntouched asserts the 400 contract: a
// rejected patch changes nothing — same generation, same digest, same
// re-solve — even when valid ops precede the invalid one in the batch.
func TestSessionRejectionLeavesStateUntouched(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(99))
	m := randMirror(rng)
	code, view := postJSON(t, ts, "PUT", "/v1/instances/rej", m.putBody(t))
	if code != 201 {
		t.Fatalf("PUT: status %d: %v", code, view)
	}
	gen, digest := view["gen"], view["digest"]

	bad := []string{
		fmt.Sprintf(`{"ops":[{"op":"set_row","node":%d,"time":[1,1],"cost":[1,1]}]}`, m.n+3),
		`{"ops":[{"op":"set_row","node":0,"time":[-1],"cost":[0]}]}`,
		fmt.Sprintf(`{"ops":[{"op":"add_edge","from":0,"to":%d}]}`, m.n+1),
		`{"ops":[{"op":"add_edge","from":1,"to":1,"delays":0}]}`,
		`{"ops":[{"op":"remove_edge","from":0,"to":0}]}`,
		`{"ops":[{"op":"set_deadline","deadline":0}]}`,
		`{"ops":[{"op":"warp_core_breach"}]}`,
		// A valid row edit followed by an invalid op must also roll back whole.
		fmt.Sprintf(`{"ops":[{"op":"set_row","node":0,"time":[%s],"cost":[%s]},{"op":"set_deadline","deadline":-4}]}`,
			strings.Repeat("1,", m.k-1)+"1", strings.Repeat("1,", m.k-1)+"1"),
		// Cycle-creating zero-delay edge pair.
		`{"ops":[{"op":"add_edge","from":0,"to":1,"delays":0},{"op":"add_edge","from":1,"to":0,"delays":0}]}`,
	}
	for i, body := range bad {
		code, m2 := postJSON(t, ts, "PATCH", "/v1/instances/rej", body)
		if code != 400 {
			t.Fatalf("bad patch %d: status %d, want 400: %v", i, code, m2)
		}
	}
	code, got := postJSON(t, ts, "GET", "/v1/instances/rej", "")
	if code != 200 || got["gen"] != gen || got["digest"] != digest {
		t.Fatalf("state changed after rejections: gen %v→%v digest %v→%v", gen, got["gen"], digest, got["digest"])
	}
	// An empty patch still re-solves to the identical answer.
	code, view = postJSON(t, ts, "PATCH", "/v1/instances/rej", `{"ops":[]}`)
	if code != 200 {
		t.Fatalf("re-solve after rejections: status %d", code)
	}
	m.checkView(t, view, "post-rejection re-solve")
}

// TestSessionMetricsAndLimits covers the session counters, the LRU cap and
// id validation.
func TestSessionMetricsAndLimits(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionMax: 2})
	rng := rand.New(rand.NewSource(5))
	m := randMirror(rng)
	for _, id := range []string{"a", "b", "c"} {
		if code, v := postJSON(t, ts, "PUT", "/v1/instances/"+id, m.putBody(t)); code != 201 {
			t.Fatalf("PUT %s: status %d: %v", id, code, v)
		}
	}
	if code, _ := postJSON(t, ts, "GET", "/v1/instances/a", ""); code != 404 {
		t.Fatalf("oldest session survived the cap: status %d, want 404", code)
	}
	if code, _ := postJSON(t, ts, "PUT", "/v1/instances/bad%20id", m.putBody(t)); code != 400 {
		t.Fatalf("invalid id accepted: status %d", code)
	}
	if code, _ := postJSON(t, ts, "PATCH", "/v1/instances/b", `{"ops":[]}`); code != 200 {
		t.Fatal("patch on live session failed")
	}
	if code, _ := postJSON(t, ts, "PATCH", "/v1/instances/b", `{"ops":[{"op":"nope"}]}`); code != 400 {
		t.Fatal("invalid op accepted")
	}
	snap := s.Metrics()
	if snap.SessionsActive != 2 || snap.SessionsCreated != 3 || snap.SessionsEvicted != 1 {
		t.Fatalf("sessions active/created/evicted = %d/%d/%d, want 2/3/1",
			snap.SessionsActive, snap.SessionsCreated, snap.SessionsEvicted)
	}
	if snap.Patches != 1 || snap.PatchesRejected != 1 {
		t.Fatalf("patches/rejected = %d/%d, want 1/1", snap.Patches, snap.PatchesRejected)
	}
}
