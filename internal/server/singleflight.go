package server

import "sync"

// flightResult is what a completed flight hands to every waiter.
type flightResult struct {
	val *SolveResult
	err error
}

// flightGroup collapses concurrent duplicate work: all callers of Do with
// the same key while the first call is still running share that first call's
// result. It is a purpose-built, stdlib-only equivalent of
// golang.org/x/sync/singleflight (which this module deliberately does not
// depend on), trimmed to the one result type the server needs.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight // guarded by mu
}

type flight struct {
	done chan struct{}
	res  flightResult
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// Do runs fn once per key at a time: the first caller (the leader) executes
// fn; callers arriving before the leader finishes wait and share its result.
// shared reports whether the result came from another caller's execution.
func (g *flightGroup) Do(key string, fn func() (*SolveResult, error)) (*SolveResult, bool, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.res.val, true, f.res.err
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.res.val, f.res.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.res.val, false, f.res.err
}

// Join attaches to an in-flight call without becoming a leader. It returns
// the flight's done channel when one is running; callers wait on it and then
// read the result with Result. ok is false when no call is in flight.
func (g *flightGroup) Join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.m[key]
	return f, ok
}

// Done is closed when the flight completes; select on it together with a
// request context to stop waiting when the client goes away.
func (f *flight) Done() <-chan struct{} { return f.done }

// Result is valid only after Done is closed.
func (f *flight) Result() (*SolveResult, error) { return f.res.val, f.res.err }

// Wait blocks until the flight completes and returns its result.
func (f *flight) Wait() (*SolveResult, error) {
	<-f.done
	return f.res.val, f.res.err
}
