package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCollapsesDuplicates(t *testing.T) {
	g := newFlightGroup()
	var execs atomic.Int64
	block := make(chan struct{})
	entered := make(chan struct{})

	// The leader starts alone and blocks inside fn; followers are only
	// launched once the flight is provably in progress, so each must attach
	// to it rather than start its own execution.
	var wg sync.WaitGroup
	results := make([]*SolveResult, 8)
	shared := make([]bool, 8)
	do := func(i int) {
		defer wg.Done()
		res, sh, err := g.Do("k", func() (*SolveResult, error) {
			execs.Add(1)
			close(entered)
			<-block
			return &SolveResult{Cost: 42}, nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		results[i], shared[i] = res, sh
	}
	wg.Add(1)
	go do(0)
	<-entered
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go do(i)
	}
	// Followers must observe the in-flight call before the leader finishes;
	// give them time to reach Do, then release the leader.
	time.Sleep(100 * time.Millisecond)
	close(block)
	wg.Wait()

	if execs.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", execs.Load())
	}
	leaders := 0
	for i := range results {
		if results[i] == nil || results[i].Cost != 42 {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

func TestFlightGroupKeysAreIndependent(t *testing.T) {
	g := newFlightGroup()
	var execs atomic.Int64
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			g.Do(k, func() (*SolveResult, error) { execs.Add(1); return nil, nil })
		}(k)
	}
	wg.Wait()
	if execs.Load() != 3 {
		t.Fatalf("distinct keys executed %d times, want 3", execs.Load())
	}
}

func TestFlightJoin(t *testing.T) {
	g := newFlightGroup()
	if _, ok := g.Join("k"); ok {
		t.Fatal("Join found a flight before any Do")
	}
	block := make(chan struct{})
	entered := make(chan struct{})
	go g.Do("k", func() (*SolveResult, error) {
		close(entered)
		<-block
		return &SolveResult{Cost: 7}, nil
	})
	<-entered
	f, ok := g.Join("k")
	if !ok {
		t.Fatal("Join missed the in-flight call")
	}
	close(block)
	res, err := f.Wait()
	if err != nil || res == nil || res.Cost != 7 {
		t.Fatalf("joined result: %+v, %v", res, err)
	}
	// After completion the key is free again.
	if _, ok := g.Join("k"); ok {
		t.Fatal("Join found a finished flight")
	}
}
