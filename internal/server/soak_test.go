package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJobSoakCountersBalance hammers the async job API from concurrent
// clients against a single-worker pool with aggressive compute deadlines —
// submits racing cancels racing status polls — then drains and asserts the
// terminal accounting identity: every accepted job ends in exactly one of
// done/failed/canceled, the queue is empty, and nothing is left in flight.
// Run under -race this doubles as the concurrency soak for the job store,
// pool, and metrics paths.
func TestJobSoakCountersBalance(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const clients = 8
	const iters = 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < iters; i++ {
				seed := c*iters + i // unique per request: no cache hits, no coalescing
				action := rng.Intn(3)
				// Jobs about to be canceled get a roomy budget and a solver
				// that runs long and propagates cancellation as an error, so
				// the DELETE is what terminates them; the rest run the anytime
				// ladder under an aggressive deadline and degrade instead.
				algo, deadlineMS := "anytime", 1+rng.Intn(20)
				if action == 0 {
					algo, deadlineMS = "exact", 2000
				}
				body := fmt.Sprintf(`{"bench":"elliptic","seed":%d,"types":6,"slack":6,"algorithm":%q}`, seed, algo)
				req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set(DeadlineHeader, fmt.Sprint(deadlineMS))
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusCreated:
				case http.StatusTooManyRequests:
					continue // shed; never entered the books
				default:
					t.Errorf("submit: status %d: %s", resp.StatusCode, raw)
					return
				}
				var v struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(raw, &v); err != nil || v.ID == "" {
					t.Errorf("submit response without id: %s", raw)
					return
				}
				switch action {
				case 0: // racing cancel
					req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+v.ID, nil)
					resp, err := ts.Client().Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 1: // racing status poll
					resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + v.ID)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	// Drain the pool, then wait for the settle janitors (they close jobs a
	// hair after the worker marks the task done).
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	var m MetricsSnapshot
	for {
		m = s.Metrics()
		if m.JobsSubmitted == m.JobsDone+m.JobsFailed+m.JobsCanceledFinal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job accounting never balanced: submitted %d != done %d + failed %d + canceled %d",
				m.JobsSubmitted, m.JobsDone, m.JobsFailed, m.JobsCanceledFinal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.JobsSubmitted == 0 {
		t.Fatal("soak submitted no jobs")
	}
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Fatalf("drained pool not idle: queue_depth %d, in_flight %d", m.QueueDepth, m.InFlight)
	}
	if m.JobsCanceledFinal == 0 {
		t.Fatal("no job ended canceled; the cancel race went unexercised")
	}
	t.Logf("soak: submitted=%d done=%d failed=%d canceled=%d shed=%d degraded=%d",
		m.JobsSubmitted, m.JobsDone, m.JobsFailed, m.JobsCanceledFinal, m.Shed, m.Degraded)
}
