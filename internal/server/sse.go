package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// sseFrame is one server-sent event headed for a subscriber.
type sseFrame struct {
	event string
	data  []byte
}

// sseSub is one SSE subscriber's bounded mailbox. ch buffers frames between
// the solving goroutine and the HTTP writer; done closes when the session is
// evicted, terminating the stream.
type sseSub struct {
	ch   chan sseFrame
	done chan struct{}
}

// offer enqueues f without ever blocking the producer: when the mailbox is
// full the oldest buffered frame is dropped to make room (newest state wins —
// an SSE consumer that fell behind cares about the latest incumbent, not the
// history it missed). Returns how many frames were dropped to make room.
func (sub *sseSub) offer(f sseFrame) int {
	dropped := 0
	for {
		select {
		case sub.ch <- f:
			return dropped
		default:
		}
		select {
		case <-sub.ch:
			dropped++
		default:
		}
	}
}

// sseIncumbent is the payload of an "incumbent" frame: one improvement of
// the session's best feasible solution during a (re-)solve.
type sseIncumbent struct {
	Gen        int64   `json:"gen"`
	Stage      string  `json:"stage"`
	Cost       int64   `json:"cost"`
	LowerBound int64   `json:"lower_bound"`
	Gap        float64 `json:"gap"`
}

// sseSettled is the payload of a "settled" frame: the terminal outcome of
// one committed session generation.
type sseSettled struct {
	Gen        int64   `json:"gen"`
	Digest     string  `json:"digest"`
	Quality    string  `json:"quality,omitempty"`
	Cost       int64   `json:"cost"`
	Gap        float64 `json:"gap"`
	Infeasible bool    `json:"infeasible"`
	Source     string  `json:"source"`
	Recomputed int     `json:"recomputed"`
}

// sseEvicted is the payload of the final "evicted" frame before the stream
// closes.
type sseEvicted struct {
	Reason string `json:"reason"`
}

// pushFrame marshals v once and offers the frame to every current
// subscriber of ss. It is called from solving goroutines (observer
// callbacks, commit), so it must never block: each mailbox applies
// drop-oldest on overflow.
func (s *Server) pushFrame(ss *session, event string, v any) {
	ss.mu.Lock()
	subs := append([]*sseSub(nil), ss.subs...)
	ss.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	f := sseFrame{event: event, data: data}
	dropped := 0
	for _, sub := range subs {
		dropped += sub.offer(f)
	}
	s.met.sseFrames.Add(int64(len(subs)))
	if dropped > 0 {
		s.met.sseDropped.Add(int64(dropped))
	}
}

// subscribe attaches a new mailbox to the session; it fails once eviction
// has begun (the stream would never receive a terminal frame).
func (ss *session) subscribe(buffer int) (*sseSub, bool) {
	sub := &sseSub{ch: make(chan sseFrame, buffer), done: make(chan struct{})}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.evicted {
		return nil, false
	}
	ss.subs = append(ss.subs, sub)
	return sub, true
}

// unsubscribe detaches sub; a no-op when eviction already captured the list.
func (ss *session) unsubscribe(sub *sseSub) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for i, x := range ss.subs {
		if x == sub {
			ss.subs = append(ss.subs[:i], ss.subs[i+1:]...)
			return
		}
	}
}

// writeSSE emits one server-sent event.
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	//hetsynth:ignore retval a failed write means the client is gone; the
	// stream loop notices via the request context and terminates.
	_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleSessionEvents streams the session's solve progress as server-sent
// events: an initial "state" frame with the current view, an "incumbent"
// frame per anytime-ladder improvement during re-solves, a "settled" frame
// per committed generation, and a terminal "evicted" frame when the session
// ends. A consumer that falls behind its bounded mailbox loses oldest
// frames first and never slows a solve down.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, &apiError{Status: 503, Msg: "server is draining"})
		return
	}
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "no such instance session"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiError{Status: 500, Msg: "streaming unsupported by this connection"})
		return
	}
	sub, ok := ss.subscribe(s.cfg.SessionEventBuffer)
	if !ok {
		writeErr(w, &apiError{Status: 404, Msg: "instance session evicted"})
		return
	}
	defer ss.unsubscribe(sub)
	ss.touch()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if data, err := json.Marshal(ss.currentView()); err == nil {
		writeSSE(w, "state", data)
	}
	fl.Flush()

	for {
		select {
		case f := <-sub.ch:
			writeSSE(w, f.event, f.data)
			fl.Flush()
		case <-sub.done:
			// Session evicted: drain whatever was buffered ahead of the close
			// (the terminal "evicted" frame is offered before done closes).
			for {
				select {
				case f := <-sub.ch:
					writeSSE(w, f.event, f.data)
				default:
					fl.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}
