package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"hetsynth/internal/canon"
	"hetsynth/internal/dfg"
)

// This file is the binary wire protocol of /v1/solve and /v1/solve-batch —
// the raw-speed alternative to the JSON bodies, negotiated by Content-Type
// (request codec) and Accept (response codec). JSON remains the compatibility
// path and the differential oracle: a binary exchange must resolve to the
// same canonical digests and decode to the same response struct as its JSON
// twin.
//
// Frame layout (all multi-byte integers little-endian):
//
//	+-----------+--------+----------------+---------------+
//	| "HSB1"    | type   | payload length | payload       |
//	| 4 bytes   | 1 byte | u32            | length bytes  |
//	+-----------+--------+----------------+---------------+
//
// with type 1 = solve request, 2 = solve response, 3 = batch request,
// 4 = batch response. The frame must span the HTTP body exactly.
//
// Solve-request payload:
//
//	flags     u8      bit0 schedule, bit1 slack mode, bit2 has timeout
//	deadline  uvarint (the slack when bit1 is set)
//	timeout   uvarint milliseconds, present iff bit2
//	algo      string  (uvarint length + bytes; empty = "auto")
//	source    u8      0 = inline instance, 1 = benchmark
//	0: inst   u32 length + canonical instance bytes ('G' graph + 'T' table
//	          sections, exactly package canon's digest encoding)
//	1: bench  string, then table u8 (1 = catalog: string; 2 = seed: 8-byte
//	          seed + uvarint type count)
//
// The inline form is the hot path: the instance bytes are decoded strictly
// (canon.DecodeInstance), so the server digests the wire bytes directly
// (canon.KeysEncoded) instead of re-encoding the decoded problem — the
// canonicalize re-marshal the JSON path pays is skipped entirely.
//
// Error responses are always JSON, whatever the negotiated codec: they are
// rare, small, and a client that cannot parse the binary codec must still be
// able to read why.

// BinContentType is the Content-Type (and Accept) value selecting the binary
// codec.
const BinContentType = "application/x-hetsynth-bin"

const (
	binMsgSolveReq  = 1
	binMsgSolveResp = 2
	binMsgBatchReq  = 3
	binMsgBatchResp = 4
)

const (
	binFlagSchedule   = 1 << 0
	binFlagSlack      = 1 << 1
	binFlagTimeout    = 1 << 2
	binSrcInline      = 0
	binSrcBench       = 1
	binTableCatalog   = 1
	binTableSeed      = 2
	binMaxNameLen     = 256 // algo / bench / catalog names
	binEntryError     = 0
	binEntryResult    = 1
	binRespFlagGap    = 1 << 0
	binRespFlagLB     = 1 << 1
	binRespFlagFront  = 1 << 2
	binRespFlagSched  = 1 << 3
)

var binMagic = [4]byte{'H', 'S', 'B', '1'}

// codecID indexes rawEntry.body: one pre-encoded response per wire codec.
type codecID int

const (
	codecJSON codecID = 0
	codecBin  codecID = 1
	numCodecs         = 2
)

func (c codecID) contentType() string {
	if c == codecBin {
		return BinContentType
	}
	return "application/json"
}

// isBinContentType reports whether a Content-Type header selects the binary
// request codec (parameters after ';' are tolerated).
func isBinContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == BinContentType
}

// respCodecFor resolves the response codec: binary when the request itself is
// binary or when Accept names the binary type; JSON otherwise.
func respCodecFor(binReq bool, accept string) codecID {
	if binReq || strings.Contains(accept, BinContentType) {
		return codecBin
	}
	return codecJSON
}

// ---- pooled encode buffer ----

// binBuf recycles binary response encodings, mirroring encBuf for JSON.
type binBuf struct{ b []byte }

var binBufPool = sync.Pool{New: func() any { return &binBuf{b: make([]byte, 0, 4096)} }}

func getBinBuf() *binBuf {
	bb := binBufPool.Get().(*binBuf)
	bb.b = bb.b[:0]
	return bb
}

func putBinBuf(bb *binBuf) { binBufPool.Put(bb) }

// ---- encode primitives ----

func appendUvarint(b []byte, x uint64) []byte { return binary.AppendUvarint(b, x) }

func appendWireString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// beginFrame writes the header with a zero length; endFrame patches it.
func beginFrame(b []byte, msg byte) []byte {
	b = append(b, binMagic[:]...)
	b = append(b, msg)
	return append(b, 0, 0, 0, 0)
}

func endFrame(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[5:9], uint32(len(b)-9))
	return b
}

// ---- strict decode cursor ----

type wireDec struct {
	b   []byte
	off int
}

var errWireTruncated = errors.New("truncated binary payload")

func (d *wireDec) remaining() int { return len(d.b) - d.off }

func (d *wireDec) u8() (byte, error) {
	if d.off >= len(d.b) {
		return 0, errWireTruncated
	}
	c := d.b[d.off]
	d.off++
	return c, nil
}

func (d *wireDec) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, errWireTruncated
	}
	d.off += n
	return x, nil
}

// uint reads a uvarint bounded by max (inclusive), as an int.
func (d *wireDec) uint(max int) (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(max) {
		return 0, fmt.Errorf("value %d exceeds maximum %d", x, max)
	}
	return int(x), nil
}

func (d *wireDec) str(maxLen int) (string, error) {
	n, err := d.uint(maxLen)
	if err != nil {
		return "", err
	}
	if n > d.remaining() {
		return "", errWireTruncated
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *wireDec) f64() (float64, error) {
	if d.remaining() < 8 {
		return 0, errWireTruncated
	}
	x := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(x), nil
}

func (d *wireDec) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, errWireTruncated
	}
	x := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return x, nil
}

func (d *wireDec) i64() (int64, error) {
	if d.remaining() < 8 {
		return 0, errWireTruncated
	}
	x := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return int64(x), nil
}

// openFrame validates the header against the full body and returns the
// payload, which must span the rest of the body exactly.
func openFrame(body []byte, wantMsg byte) ([]byte, *apiError) {
	if len(body) < 9 {
		return nil, badRequest("binary frame shorter than its 9-byte header")
	}
	if [4]byte(body[:4]) != binMagic {
		return nil, badRequest("bad binary frame magic")
	}
	if body[4] != wantMsg {
		return nil, badRequest("binary frame type %d, want %d", body[4], wantMsg)
	}
	n := binary.LittleEndian.Uint32(body[5:9])
	if uint64(n) != uint64(len(body)-9) {
		return nil, badRequest("binary frame declares %d payload bytes, body carries %d", n, len(body)-9)
	}
	return body[9:], nil
}

// ---- solve request ----

// appendSolveRequestPayload encodes one solve request entry (no frame
// header). Inline graphs and tables are folded into the canonical instance
// encoding; bench-named graphs keep their catalog or seed table reference.
// This is the client-side half of the codec, used by tooling and tests — the
// server only decodes.
func appendSolveRequestPayload(b []byte, req *SolveRequest) ([]byte, error) {
	var flags byte
	if req.Schedule {
		flags |= binFlagSchedule
	}
	deadline := uint64(req.Deadline)
	if req.Slack != nil {
		if req.Deadline != 0 {
			return nil, errors.New("use either deadline or slack, not both")
		}
		if *req.Slack < 0 {
			return nil, fmt.Errorf("negative slack %d", *req.Slack)
		}
		flags |= binFlagSlack
		deadline = uint64(*req.Slack)
	} else if req.Deadline < 0 {
		return nil, fmt.Errorf("negative deadline %d", req.Deadline)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms %d", req.TimeoutMS)
	}
	if req.TimeoutMS > 0 {
		flags |= binFlagTimeout
	}
	b = append(b, flags)
	b = appendUvarint(b, deadline)
	if req.TimeoutMS > 0 {
		b = appendUvarint(b, uint64(req.TimeoutMS))
	}
	b = appendWireString(b, req.Algorithm)
	switch {
	case len(req.Graph) > 0:
		if req.Table == nil {
			return nil, errors.New("binary inline form needs an inline table alongside the inline graph")
		}
		g := dfg.New()
		if err := g.UnmarshalJSON(req.Graph); err != nil {
			return nil, fmt.Errorf("invalid graph: %w", err)
		}
		treq := *req
		tab, err := resolveTable(&treq, g)
		if err != nil {
			return nil, err
		}
		b = append(b, binSrcInline)
		lenAt := len(b)
		b = append(b, 0, 0, 0, 0)
		b = canon.AppendInstance(b, g, tab)
		binary.LittleEndian.PutUint32(b[lenAt:], uint32(len(b)-lenAt-4))
	case req.Bench != "":
		b = append(b, binSrcBench)
		b = appendWireString(b, req.Bench)
		switch {
		case req.Catalog != "":
			b = append(b, binTableCatalog)
			b = appendWireString(b, req.Catalog)
		case req.Seed != nil:
			b = append(b, binTableSeed)
			b = binary.LittleEndian.AppendUint64(b, uint64(*req.Seed))
			b = appendUvarint(b, uint64(req.Types))
		default:
			return nil, errors.New("binary bench form needs a catalog or seed table")
		}
	default:
		return nil, errors.New("a graph is required: set graph or bench")
	}
	return b, nil
}

// EncodeBinSolveRequest encodes req as a complete binary /v1/solve body.
func EncodeBinSolveRequest(req *SolveRequest) ([]byte, error) {
	b := beginFrame(nil, binMsgSolveReq)
	b, err := appendSolveRequestPayload(b, req)
	if err != nil {
		return nil, err
	}
	return endFrame(b), nil
}

// EncodeBinBatchRequest encodes req as a complete binary /v1/solve-batch
// body: a uvarint entry count followed by the entry payloads back to back.
func EncodeBinBatchRequest(req *BatchRequest) ([]byte, error) {
	b := beginFrame(nil, binMsgBatchReq)
	b = appendUvarint(b, uint64(len(req.Entries)))
	var err error
	for i := range req.Entries {
		if b, err = appendSolveRequestPayload(b, &req.Entries[i]); err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
	}
	return endFrame(b), nil
}

// decodeSolveEntry parses one solve-request payload at the cursor and
// resolves it to a spec. A non-nil *apiError is a semantic rejection with the
// cursor correctly advanced (batch decoding isolates it per entry); a plain
// error is a malformed encoding and poisons the whole body.
func decodeSolveEntry(d *wireDec) (*solveSpec, *apiError, error) {
	flags, err := d.u8()
	if err != nil {
		return nil, nil, err
	}
	if flags&^(binFlagSchedule|binFlagSlack|binFlagTimeout) != 0 {
		return nil, nil, fmt.Errorf("unknown request flags 0x%02x", flags)
	}
	req := SolveRequest{Schedule: flags&binFlagSchedule != 0}
	dl, err := d.uint(maxDeadline)
	if err != nil {
		return nil, nil, fmt.Errorf("deadline: %w", err)
	}
	if flags&binFlagSlack != 0 {
		req.Slack = &dl
	} else {
		req.Deadline = dl
	}
	if flags&binFlagTimeout != 0 {
		if req.TimeoutMS, err = d.uint(math.MaxInt32); err != nil {
			return nil, nil, fmt.Errorf("timeout: %w", err)
		}
	}
	if req.Algorithm, err = d.str(binMaxNameLen); err != nil {
		return nil, nil, fmt.Errorf("algorithm: %w", err)
	}
	src, err := d.u8()
	if err != nil {
		return nil, nil, err
	}
	switch src {
	case binSrcInline:
		n, err := d.u32()
		if err != nil {
			return nil, nil, err
		}
		if int(n) > d.remaining() {
			return nil, nil, errWireTruncated
		}
		instBytes := d.b[d.off : d.off+int(n)]
		d.off += int(n)
		g, tab, inst, rest, err := canon.DecodeInstance(instBytes)
		if err != nil {
			// The instance section is framed by its length, so a bad instance
			// is isolated: the cursor is already past it.
			return nil, badRequest("invalid instance encoding: %v", err), nil
		}
		if len(rest) != 0 {
			return nil, badRequest("instance encoding carries %d trailing bytes", len(rest)), nil
		}
		spec, rerr := resolveWith(g, tab, &req, inst)
		if rerr != nil {
			return nil, rerr.(*apiError), nil
		}
		return spec, nil, nil
	case binSrcBench:
		if req.Bench, err = d.str(binMaxNameLen); err != nil {
			return nil, nil, fmt.Errorf("bench: %w", err)
		}
		tk, err := d.u8()
		if err != nil {
			return nil, nil, err
		}
		switch tk {
		case binTableCatalog:
			if req.Catalog, err = d.str(binMaxNameLen); err != nil {
				return nil, nil, fmt.Errorf("catalog: %w", err)
			}
		case binTableSeed:
			seed, err := d.i64()
			if err != nil {
				return nil, nil, err
			}
			req.Seed = &seed
			if req.Types, err = d.uint(16); err != nil {
				return nil, nil, fmt.Errorf("types: %w", err)
			}
		default:
			return nil, nil, fmt.Errorf("unknown table source %d", tk)
		}
		spec, rerr := resolve(&req)
		if rerr != nil {
			return nil, rerr.(*apiError), nil
		}
		return spec, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown graph source %d", src)
	}
}

// decodeSolveRequestBin parses a complete binary /v1/solve body.
func decodeSolveRequestBin(body []byte) (*solveSpec, *apiError) {
	payload, aerr := openFrame(body, binMsgSolveReq)
	if aerr != nil {
		return nil, aerr
	}
	d := &wireDec{b: payload}
	spec, aerr, err := decodeSolveEntry(d)
	if err != nil {
		return nil, badRequest("invalid binary request: %v", err)
	}
	if aerr != nil {
		return nil, aerr
	}
	if d.remaining() != 0 {
		return nil, badRequest("trailing data after binary request")
	}
	return spec, nil
}

// binBatchEntry is one decoded batch entry: a resolved spec or its semantic
// rejection.
type binBatchEntry struct {
	spec *solveSpec
	aerr *apiError
}

// decodeBatchRequestBin parses a complete binary /v1/solve-batch body.
// Semantic failures stay per entry; encoding failures reject the body.
func decodeBatchRequestBin(body []byte) ([]binBatchEntry, *apiError) {
	payload, aerr := openFrame(body, binMsgBatchReq)
	if aerr != nil {
		return nil, aerr
	}
	d := &wireDec{b: payload}
	n, err := d.uint(maxBatchEntries)
	if err != nil {
		return nil, badRequest("invalid binary batch: entry count: %v", err)
	}
	if n == 0 {
		return nil, badRequest("batch has no entries")
	}
	entries := make([]binBatchEntry, n)
	for i := range entries {
		spec, aerr, err := decodeSolveEntry(d)
		if err != nil {
			return nil, badRequest("invalid binary batch entry %d: %v", i, err)
		}
		entries[i] = binBatchEntry{spec: spec, aerr: aerr}
	}
	if d.remaining() != 0 {
		return nil, badRequest("trailing data after binary batch")
	}
	return entries, nil
}

// ---- solve response ----

// appendSolveResult encodes the shared result body (no source string).
func appendSolveResult(b []byte, res *SolveResult) []byte {
	b = appendWireString(b, res.Algorithm)
	b = appendUvarint(b, uint64(res.Deadline))
	b = appendUvarint(b, uint64(res.Cost))
	b = appendUvarint(b, uint64(res.Length))
	b = appendUvarint(b, uint64(len(res.Assignment)))
	for _, k := range res.Assignment {
		b = appendUvarint(b, uint64(k))
	}
	b = appendWireString(b, res.Quality)
	b = appendWireString(b, res.Stage)
	var flags byte
	if res.Gap != nil {
		flags |= binRespFlagGap
	}
	if res.LowerBound != nil {
		flags |= binRespFlagLB
	}
	if res.Frontier != nil {
		flags |= binRespFlagFront
	}
	if res.Schedule != nil {
		flags |= binRespFlagSched
	}
	b = append(b, flags)
	if res.Gap != nil {
		b = appendF64(b, *res.Gap)
	}
	if res.LowerBound != nil {
		b = appendUvarint(b, uint64(*res.LowerBound))
	}
	if res.Frontier != nil {
		b = appendUvarint(b, uint64(len(res.Frontier)))
		for _, p := range res.Frontier {
			b = appendUvarint(b, uint64(p.Deadline))
			b = appendUvarint(b, uint64(p.Cost))
		}
	}
	if res.Schedule != nil {
		sp := res.Schedule
		b = appendUvarint(b, uint64(len(sp.Start)))
		for _, x := range sp.Start {
			b = appendUvarint(b, uint64(x))
		}
		for _, x := range sp.Instance {
			b = appendUvarint(b, uint64(x))
		}
		b = appendUvarint(b, uint64(sp.Length))
		b = appendUvarint(b, uint64(len(sp.Config)))
		for _, x := range sp.Config {
			b = appendUvarint(b, uint64(x))
		}
	}
	return appendF64(b, res.ElapsedMS)
}

// appendSolveRespFrame encodes a complete binary solve response body.
func appendSolveRespFrame(b []byte, resp *SolveResponse) []byte {
	b = beginFrame(b, binMsgSolveResp)
	b = appendWireString(b, resp.Source)
	b = appendSolveResult(b, &resp.SolveResult)
	return endFrame(b)
}

// appendBatchRespFrame encodes a complete binary batch response body.
func appendBatchRespFrame(b []byte, resp *BatchResponse) []byte {
	b = beginFrame(b, binMsgBatchResp)
	b = appendUvarint(b, uint64(len(resp.Results)))
	for i := range resp.Results {
		r := &resp.Results[i]
		if r.Result == nil {
			b = append(b, binEntryError)
			b = appendWireString(b, r.Error)
			b = appendUvarint(b, uint64(r.Status))
			continue
		}
		b = append(b, binEntryResult)
		b = appendWireString(b, r.Source)
		b = appendSolveResult(b, r.Result)
	}
	b = appendUvarint(b, uint64(resp.Entries))
	b = appendUvarint(b, uint64(resp.Deduped))
	return endFrame(appendF64(b, resp.ElapsedMS))
}

// maxWireElems bounds decoded slice lengths in responses; responses are
// server-built, so this only guards client-side decoding of corrupt streams.
const maxWireElems = 1 << 22

func decodeSolveResult(d *wireDec) (*SolveResult, error) {
	res := &SolveResult{}
	var err error
	if res.Algorithm, err = d.str(binMaxNameLen); err != nil {
		return nil, err
	}
	if res.Deadline, err = d.uint(maxDeadline); err != nil {
		return nil, err
	}
	cost, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	res.Cost = int64(cost)
	if res.Length, err = d.uint(maxDeadline); err != nil {
		return nil, err
	}
	n, err := d.uint(maxWireElems)
	if err != nil {
		return nil, err
	}
	if n > d.remaining() {
		return nil, errWireTruncated
	}
	res.Assignment = make([]int, n)
	for i := range res.Assignment {
		if res.Assignment[i], err = d.uint(math.MaxInt32); err != nil {
			return nil, err
		}
	}
	if res.Quality, err = d.str(binMaxNameLen); err != nil {
		return nil, err
	}
	if res.Stage, err = d.str(binMaxNameLen); err != nil {
		return nil, err
	}
	flags, err := d.u8()
	if err != nil {
		return nil, err
	}
	if flags&binRespFlagGap != 0 {
		g, err := d.f64()
		if err != nil {
			return nil, err
		}
		res.Gap = &g
	}
	if flags&binRespFlagLB != 0 {
		lb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		l := int64(lb)
		res.LowerBound = &l
	}
	if flags&binRespFlagFront != 0 {
		n, err := d.uint(maxWireElems)
		if err != nil {
			return nil, err
		}
		if n > d.remaining() {
			return nil, errWireTruncated
		}
		res.Frontier = make([]FrontierPointPayload, n)
		for i := range res.Frontier {
			if res.Frontier[i].Deadline, err = d.uint(maxDeadline); err != nil {
				return nil, err
			}
			c, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			res.Frontier[i].Cost = int64(c)
		}
	}
	if flags&binRespFlagSched != 0 {
		sp := &SchedulePayload{}
		n, err := d.uint(maxWireElems)
		if err != nil {
			return nil, err
		}
		if 2*n > d.remaining() {
			return nil, errWireTruncated
		}
		sp.Start = make([]int, n)
		sp.Instance = make([]int, n)
		for i := range sp.Start {
			if sp.Start[i], err = d.uint(math.MaxInt32); err != nil {
				return nil, err
			}
		}
		for i := range sp.Instance {
			if sp.Instance[i], err = d.uint(math.MaxInt32); err != nil {
				return nil, err
			}
		}
		if sp.Length, err = d.uint(math.MaxInt32); err != nil {
			return nil, err
		}
		k, err := d.uint(maxWireElems)
		if err != nil {
			return nil, err
		}
		if k > d.remaining() {
			return nil, errWireTruncated
		}
		sp.Config = make([]int, k)
		for i := range sp.Config {
			if sp.Config[i], err = d.uint(math.MaxInt32); err != nil {
				return nil, err
			}
		}
		res.Schedule = sp
	}
	if res.ElapsedMS, err = d.f64(); err != nil {
		return nil, err
	}
	return res, nil
}

// DecodeBinSolveResponse parses a binary /v1/solve response body.
func DecodeBinSolveResponse(body []byte) (*SolveResponse, error) {
	payload, aerr := openFrame(body, binMsgSolveResp)
	if aerr != nil {
		return nil, errors.New(aerr.Msg)
	}
	d := &wireDec{b: payload}
	source, err := d.str(binMaxNameLen)
	if err != nil {
		return nil, err
	}
	res, err := decodeSolveResult(d)
	if err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, errors.New("trailing data after binary response")
	}
	return &SolveResponse{Source: source, SolveResult: *res}, nil
}

// DecodeBinBatchResponse parses a binary /v1/solve-batch response body.
func DecodeBinBatchResponse(body []byte) (*BatchResponse, error) {
	payload, aerr := openFrame(body, binMsgBatchResp)
	if aerr != nil {
		return nil, errors.New(aerr.Msg)
	}
	d := &wireDec{b: payload}
	n, err := d.uint(maxBatchEntries)
	if err != nil {
		return nil, err
	}
	resp := &BatchResponse{Results: make([]BatchEntryResult, n)}
	for i := range resp.Results {
		kind, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case binEntryError:
			if resp.Results[i].Error, err = d.str(maxBodyBytes); err != nil {
				return nil, err
			}
			if resp.Results[i].Status, err = d.uint(999); err != nil {
				return nil, err
			}
		case binEntryResult:
			if resp.Results[i].Source, err = d.str(binMaxNameLen); err != nil {
				return nil, err
			}
			if resp.Results[i].Result, err = decodeSolveResult(d); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown batch entry kind %d", kind)
		}
	}
	if resp.Entries, err = d.uint(maxBatchEntries); err != nil {
		return nil, err
	}
	if resp.Deduped, err = d.uint(maxBatchEntries); err != nil {
		return nil, err
	}
	if resp.ElapsedMS, err = d.f64(); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, errors.New("trailing data after binary batch response")
	}
	return resp, nil
}
