package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fireBin is fire for the binary protocol: it distributes b.N pre-framed
// solve requests across conc client goroutines under the binary content
// type, failing the benchmark on any non-200.
func fireBin(b *testing.B, url string, conc int, body func(i int) []byte) {
	b.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc}}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 32<<10)
			for i := range next {
				resp, err := client.Post(url, BinContentType, bytes.NewReader(body(i)))
				if err == nil {
					if resp.StatusCode != 200 {
						err = fmt.Errorf("status %d", resp.StatusCode)
					} else {
						for {
							if _, rerr := resp.Body.Read(buf); rerr != nil {
								break
							}
						}
					}
					resp.Body.Close()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	b.StopTimer()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}

// binSolveBody frames one bench-form solve request in the binary protocol.
func binSolveBody(b testing.TB, bench string, seed int64, slack int) []byte {
	b.Helper()
	enc, err := EncodeBinSolveRequest(&SolveRequest{Bench: bench, Seed: &seed, Slack: &slack})
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

// BenchmarkHTTPSolveCachedBin is BenchmarkHTTPSolveCached over the binary
// protocol: identical framed requests served from the raw-replay cache.
func BenchmarkHTTPSolveCachedBin(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			body := binSolveBody(b, "elliptic", 1, 4)
			// Twice: the first request solves, the second is answered from the
			// result cache and stores the raw-replay entry the loop then hits.
			for j := 0; j < 2; j++ {
				resp, err := benchClient.Post(ts.URL+"/v1/solve", BinContentType, bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("warmup status %d", resp.StatusCode)
				}
			}
			fireBin(b, ts.URL+"/v1/solve", conc, func(int) []byte { return body })
		})
	}
}

// BenchmarkHTTPSolveUncachedBin measures full binary-path solves: every
// request frames a fresh tree-bench seed client-side, so the server decodes,
// digests the wire bytes, and runs a worker on each iteration.
func BenchmarkHTTPSolveUncachedBin(b *testing.B) {
	for _, conc := range benchConcurrencies {
		b.Run(fmt.Sprintf("conc%d", conc), func(b *testing.B) {
			ts, stop := newBenchServer()
			defer stop()
			fireBin(b, ts.URL+"/v1/solve", conc, func(i int) []byte {
				return binSolveBody(b, "volterra", int64(i+1), 4)
			})
		})
	}
}

// ---- direct dispatch ----
//
// The HTTP benchmarks above sit on ~20µs of net/http + loopback floor (see
// BenchmarkHTTPFloor), which drowns the handler's own cost on the cached
// path. The Direct benchmarks dispatch straight into the handler with a
// reusable request/response pair, so they measure what the server actually
// does per request — decode, cache probe, encode — with zero harness allocs.

// nopBody is a reusable zero-alloc request body.
type nopBody struct{ bytes.Reader }

func (*nopBody) Close() error { return nil }

// discardRW is a minimal ResponseWriter: it keeps the status and drops the
// payload, so the benchmark never pays for a recorder's buffer growth.
type discardRW struct {
	h    http.Header
	code int
}

func (w *discardRW) Header() http.Header         { return w.h }
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(c int)           { w.code = c }

// benchDirect drives b.N solve requests through the handler in-process.
// warmups are served before the timer starts (two identical requests settle
// the result cache AND store the raw-replay entry).
func benchDirect(b *testing.B, ct string, warmups int, body func(i int) []byte) {
	s := New(Config{QueueDepth: 4096, CacheSize: 1 << 17, JobRetention: 16})
	defer s.Close()
	h := s.Handler()
	req := httptest.NewRequest("POST", "/v1/solve", nil)
	req.Header.Set("Content-Type", ct)
	var rd nopBody
	req.Body = &rd
	w := &discardRW{h: make(http.Header)}
	serve := func(payload []byte) {
		rd.Reset(payload)
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != 200 {
			b.Fatalf("status %d", w.code)
		}
	}
	for j := 0; j < warmups; j++ {
		serve(body(0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve(body(i))
	}
}

// BenchmarkDirectSolveCached is the raw-replay fast path with the harness
// stripped away: a byte-identical body answered from the raw cache, per
// codec. This is the number the ≤15µs cached-latency budget is judged on.
func BenchmarkDirectSolveCached(b *testing.B) {
	jsonBody := []byte(`{"bench":"elliptic","seed":1,"slack":4}`)
	b.Run("json", func(b *testing.B) {
		benchDirect(b, "application/json", 2, func(int) []byte { return jsonBody })
	})
	b.Run("bin", func(b *testing.B) {
		binBody := binSolveBody(b, "elliptic", 1, 4)
		benchDirect(b, BinContentType, 2, func(int) []byte { return binBody })
	})
}

// BenchmarkDirectSolveUncached is a full solve per iteration — fresh seed,
// no cache tier hits — per codec. The binary arm is the ≤150µs / <500
// allocs/op budget: frame decode, wire-byte digest, worker solve, frame
// encode. (Client-side request framing is inside the measured loop; it is a
// handful of allocs and mirrors what a real client pays.)
func BenchmarkDirectSolveUncached(b *testing.B) {
	b.Run("json", func(b *testing.B) {
		benchDirect(b, "application/json", 0, func(i int) []byte {
			return []byte(fmt.Sprintf(`{"bench":"volterra","seed":%d,"slack":4}`, i+1))
		})
	})
	b.Run("bin", func(b *testing.B) {
		benchDirect(b, BinContentType, 0, func(i int) []byte {
			return binSolveBody(b, "volterra", int64(i+1), 4)
		})
	})
}
