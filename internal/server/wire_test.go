package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// ---- codec unit tests ----

func TestBinaryResponseRoundTrip(t *testing.T) {
	gap, lb := 0.25, int64(41)
	full := &SolveResponse{
		Source: "solve",
		SolveResult: SolveResult{
			Algorithm:  "anytime",
			Deadline:   17,
			Cost:       123456789,
			Length:     16,
			Assignment: []int{0, 2, 1, 1},
			Quality:    "exact",
			Gap:        &gap,
			LowerBound: &lb,
			Stage:      "tree",
			Frontier:   []FrontierPointPayload{{Deadline: 9, Cost: 50}, {Deadline: 12, Cost: 41}},
			Schedule: &SchedulePayload{
				Start:    []int{1, 2, 3, 4},
				Instance: []int{0, 0, 1, 0},
				Length:   16,
				Config:   []int{2, 1},
			},
			ElapsedMS: 1.25,
		},
	}
	minimal := &SolveResponse{
		Source: "cache",
		SolveResult: SolveResult{
			Algorithm:  "auto",
			Deadline:   3,
			Assignment: []int{0},
			ElapsedMS:  0,
		},
	}
	for _, want := range []*SolveResponse{full, minimal} {
		frame := appendSolveRespFrame(nil, want)
		got, err := DecodeBinSolveResponse(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}

	batch := &BatchResponse{
		Results: []BatchEntryResult{
			{Source: "cache", Result: &full.SolveResult},
			{Error: "infeasible: no assignment meets the timing constraint", Status: 422},
		},
		Entries:   3,
		Deduped:   1,
		ElapsedMS: 2.5,
	}
	frame := appendBatchRespFrame(nil, batch)
	got, err := DecodeBinBatchResponse(frame)
	if err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("batch round trip mismatch:\n got %+v\nwant %+v", got, batch)
	}
}

// binReqFromJSON builds the binary twin of a JSON solve body, skipping (with
// ok=false) request shapes the binary codec intentionally does not carry.
func binReqFromJSON(t *testing.T, body string) ([]byte, bool) {
	t.Helper()
	var req SolveRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("seed body does not parse: %v", err)
	}
	enc, err := EncodeBinSolveRequest(&req)
	if err != nil {
		return nil, false
	}
	return enc, true
}

// TestBinaryRequestDecodesToSameSpec is the decode-level differential: a JSON
// body and its binary twin must resolve to identical canonical keys and spec
// flags — in particular, inline instances digested straight off the wire
// bytes (KeysEncoded) must match the JSON path's re-encoded digests.
func TestBinaryRequestDecodesToSameSpec(t *testing.T) {
	bodies := []string{
		`{"bench":"elliptic","seed":1,"slack":4}`,
		`{"bench":"volterra","seed":9,"slack":2,"algorithm":"anytime","timeout_ms":50}`,
		`{"graph":{"nodes":[{"name":"a","op":"add"}],"edges":[]},"table":{"time":[[1]],"cost":[[2]]},"deadline":3}`,
		`{"graph":{"nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[{"from":"a","to":"b","delays":0}]},"table":{"time":[[1,2],[2,1]],"cost":[[5,3],[4,6]]},"deadline":9,"schedule":true}`,
		`{"bench":"diffeq","catalog":"generic3","deadline":40,"schedule":true}`,
		`{"bench":"fir16","seed":3,"slack":0,"algorithm":"tree"}`,
	}
	for _, body := range bodies {
		jsonSpec, err := decodeSolveRequestBytes([]byte(body))
		if err != nil {
			t.Fatalf("%s: JSON decode: %v", body, err)
		}
		bin, ok := binReqFromJSON(t, body)
		if !ok {
			t.Fatalf("%s: no binary twin", body)
		}
		binSpec, aerr := decodeSolveRequestBin(bin)
		if aerr != nil {
			t.Fatalf("%s: binary decode: %v", body, aerr)
		}
		if binSpec.key != jsonSpec.key || binSpec.instKey != jsonSpec.instKey {
			t.Fatalf("%s: keys differ: bin (%s, %s) vs json (%s, %s)",
				body, binSpec.key, binSpec.instKey, jsonSpec.key, jsonSpec.instKey)
		}
		if binSpec.algoName != jsonSpec.algoName || binSpec.schedule != jsonSpec.schedule ||
			binSpec.timeout != jsonSpec.timeout || binSpec.tree != jsonSpec.tree ||
			binSpec.anytime != jsonSpec.anytime || binSpec.prob.Deadline != jsonSpec.prob.Deadline {
			t.Fatalf("%s: spec fields differ: bin %+v vs json %+v", body, binSpec, jsonSpec)
		}
	}
}

// ---- HTTP-level differential ----

func doRaw(t *testing.T, ts *httptest.Server, path, contentType, accept string, body []byte) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), raw
}

func TestBinarySolveMatchesJSONOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		volterraReq,
		`{"graph":{"nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[{"from":"a","to":"b","delays":0}]},"table":{"time":[[1,2],[2,1]],"cost":[[5,3],[4,6]]},"deadline":9}`,
		// Anytime on a tiny inline instance: small enough to settle exact
		// (and thus be cacheable) even under -race, while still driving the
		// gap/lower-bound/stage fields through both codecs.
		`{"graph":{"nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"},{"name":"c","op":"add"}],"edges":[{"from":"a","to":"b","delays":0},{"from":"b","to":"c","delays":0}]},"table":{"time":[[1,2],[2,1],[1,1]],"cost":[[5,3],[4,6],[2,2]]},"deadline":6,"algorithm":"anytime"}`,
	} {
		// Warm the result cache so both codecs replay the same settled answer.
		code, _, _ := doRaw(t, ts, "/v1/solve", "", "", []byte(body))
		if code != 200 {
			t.Fatalf("warm solve: status %d", code)
		}
		code, ct, jsonRaw := doRaw(t, ts, "/v1/solve", "", "", []byte(body))
		if code != 200 || ct != "application/json" {
			t.Fatalf("JSON replay: status %d content type %s", code, ct)
		}
		var want SolveResponse
		if err := json.Unmarshal(jsonRaw, &want); err != nil {
			t.Fatal(err)
		}
		bin, ok := binReqFromJSON(t, body)
		if !ok {
			t.Fatalf("%s: no binary twin", body)
		}
		code, ct, binRaw := doRaw(t, ts, "/v1/solve", BinContentType, "", bin)
		if code != 200 {
			t.Fatalf("binary solve: status %d: %s", code, binRaw)
		}
		if ct != BinContentType {
			t.Fatalf("binary solve content type %s, want %s", ct, BinContentType)
		}
		got, err := DecodeBinSolveResponse(binRaw)
		if err != nil {
			t.Fatalf("decode binary response: %v", err)
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("binary response differs from JSON:\n bin %+v\njson %+v", got, &want)
		}

		// A JSON request may negotiate a binary response via Accept.
		code, ct, accRaw := doRaw(t, ts, "/v1/solve", "", BinContentType, []byte(body))
		if code != 200 || ct != BinContentType {
			t.Fatalf("Accept-negotiated response: status %d content type %s", code, ct)
		}
		if accGot, err := DecodeBinSolveResponse(accRaw); err != nil {
			t.Fatalf("decode Accept-negotiated response: %v", err)
		} else if !reflect.DeepEqual(accGot, &want) {
			t.Fatalf("Accept-negotiated response differs from JSON")
		}

		// Replay the binary body: the raw cache must now answer it verbatim.
		code, _, again := doRaw(t, ts, "/v1/solve", BinContentType, "", bin)
		if code != 200 || !bytes.Equal(again, binRaw) {
			t.Fatalf("binary raw replay differs (status %d)", code)
		}
	}
}

func TestBinaryBatchMatchesJSONOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batchBody := `{"entries":[
		{"bench":"volterra","seed":1,"slack":3},
		{"bench":"volterra","seed":1,"slack":3},
		{"bench":"elliptic","seed":4,"slack":2},
		{"bench":"nosuch","seed":1,"slack":1}
	]}`
	// Warm: the first run solves, the second replays from settled caches.
	// (The unknown bench keeps one entry erroring, which exercises the error
	// arm of the binary batch codec too — but note an errored entry also
	// keeps the batch from entering the raw-replay cache.)
	code, _, _ := doRaw(t, ts, "/v1/solve-batch", "", "", []byte(batchBody))
	if code != 200 {
		t.Fatalf("warm batch: status %d", code)
	}
	code, _, jsonRaw := doRaw(t, ts, "/v1/solve-batch", "", "", []byte(batchBody))
	if code != 200 {
		t.Fatalf("JSON batch: status %d", code)
	}
	var want BatchResponse
	if err := json.Unmarshal(jsonRaw, &want); err != nil {
		t.Fatal(err)
	}
	var breq BatchRequest
	if err := json.Unmarshal([]byte(batchBody), &breq); err != nil {
		t.Fatal(err)
	}
	bin, err := EncodeBinBatchRequest(&breq)
	if err != nil {
		t.Fatal(err)
	}
	code, ct, binRaw := doRaw(t, ts, "/v1/solve-batch", BinContentType, "", bin)
	if code != 200 || ct != BinContentType {
		t.Fatalf("binary batch: status %d content type %s: %s", code, ct, binRaw)
	}
	got, err := DecodeBinBatchResponse(binRaw)
	if err != nil {
		t.Fatalf("decode binary batch response: %v", err)
	}
	// Elapsed time is per-request wall clock; everything else must agree.
	got.ElapsedMS, want.ElapsedMS = 0, 0
	if !reflect.DeepEqual(got, &want) {
		t.Fatalf("binary batch differs from JSON:\n bin %+v\njson %+v", got, &want)
	}
}

// ---- fuzz ----

// FuzzBinSolveDifferential cross-checks the two request codecs: whenever a
// JSON body and its binary twin both decode, they must agree on the canonical
// digests (the binary path digests raw wire bytes — a single divergence would
// split the cache) and on every spec field.
func FuzzBinSolveDifferential(f *testing.F) {
	f.Add(`{"bench":"elliptic","seed":1,"slack":4}`)
	f.Add(`{"bench":"volterra","seed":9,"slack":2,"algorithm":"anytime","timeout_ms":50}`)
	f.Add(`{"graph":{"nodes":[{"name":"a","op":"add"}],"edges":[]},"table":{"time":[[1]],"cost":[[2]]},"deadline":3}`)
	f.Add(`{"graph":{"nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[{"from":"a","to":"b","delays":1}]},"table":{"time":[[1,2],[2,1]],"cost":[[5,3],[4,6]]},"deadline":9,"schedule":true}`)
	f.Add(`{"bench":"diffeq","catalog":"generic3","deadline":40}`)
	f.Fuzz(func(t *testing.T, body string) {
		jsonSpec, err := decodeSolveRequestBytes([]byte(body))
		if err != nil {
			return // not a valid request at all; FuzzDecodeRequest owns this space
		}
		var req SolveRequest
		if json.Unmarshal([]byte(body), &req) != nil {
			return
		}
		bin, encErr := EncodeBinSolveRequest(&req)
		if encErr != nil {
			return // shape the binary codec does not carry (e.g. graph+catalog)
		}
		binSpec, aerr := decodeSolveRequestBin(bin)
		if aerr != nil {
			t.Fatalf("JSON-accepted body, binary twin rejected: %v", aerr)
		}
		if binSpec.key != jsonSpec.key || binSpec.instKey != jsonSpec.instKey {
			t.Fatalf("canonical keys differ: bin (%s, %s) vs json (%s, %s)",
				binSpec.key, binSpec.instKey, jsonSpec.key, jsonSpec.instKey)
		}
		if binSpec.algoName != jsonSpec.algoName || binSpec.schedule != jsonSpec.schedule ||
			binSpec.timeout != jsonSpec.timeout || binSpec.tree != jsonSpec.tree ||
			binSpec.anytime != jsonSpec.anytime || binSpec.prob.Deadline != jsonSpec.prob.Deadline {
			t.Fatal("spec fields differ between codecs")
		}
	})
}

// FuzzBinFrame throws arbitrary bytes at the binary frame decoders: malformed
// frames must surface as 400 apiErrors — never panics, never foreign error
// types — and any accepted frame must decode to stable canonical keys.
func FuzzBinFrame(f *testing.F) {
	if bin, err := EncodeBinSolveRequest(&SolveRequest{Bench: "elliptic", Seed: ptrInt64(1), Slack: ptrInt(4)}); err == nil {
		f.Add(bin)
		f.Add(bin[:len(bin)-3])
		mut := append([]byte(nil), bin...)
		mut[4] = 99
		f.Add(mut)
	}
	if bb, err := EncodeBinBatchRequest(&BatchRequest{Entries: []SolveRequest{
		{Bench: "volterra", Seed: ptrInt64(2), Slack: ptrInt(1)},
	}}); err == nil {
		f.Add(bb)
	}
	f.Add([]byte("HSB1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		spec, aerr := decodeSolveRequestBin(body)
		if aerr != nil {
			if aerr.Status != 400 {
				t.Fatalf("solve frame rejection carries status %d, want 400", aerr.Status)
			}
		} else {
			if verr := spec.prob.Validate(); verr != nil {
				t.Fatalf("decoder accepted an invalid problem: %v", verr)
			}
			again, aerr2 := decodeSolveRequestBin(body)
			if aerr2 != nil || again.key != spec.key || again.instKey != spec.instKey {
				t.Fatal("binary decode unstable across calls")
			}
		}
		entries, berr := decodeBatchRequestBin(body)
		if berr != nil {
			if berr.Status != 400 {
				t.Fatalf("batch frame rejection carries status %d, want 400", berr.Status)
			}
			return
		}
		for _, e := range entries {
			if e.aerr == nil && e.spec == nil {
				t.Fatal("batch entry decoded to neither spec nor error")
			}
			if e.aerr != nil && e.aerr.Status != 400 {
				t.Fatalf("batch entry rejection carries status %d, want 400", e.aerr.Status)
			}
		}
	})
}

func ptrInt(v int) *int       { return &v }
func ptrInt64(v int64) *int64 { return &v }

// TestBinaryMalformedFramesAre400 pins the HTTP contract for a handful of
// hand-built broken frames: the server answers 400 with a JSON error body,
// whatever codec the client asked for.
func TestBinaryMalformedFramesAre400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	good, err := EncodeBinSolveRequest(&SolveRequest{Bench: "elliptic", Seed: ptrInt64(1), Slack: ptrInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": []byte("HSB"),
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"bad type":     append([]byte("HSB1\x07"), good[5:]...),
		"truncated":    good[:len(good)-2],
		"overlong len": append(append([]byte(nil), good...), 0xff),
		"json body":    []byte(volterraReq),
	}
	for name, body := range cases {
		code, ct, raw := doRaw(t, ts, "/v1/solve", BinContentType, "", body)
		if code != 400 {
			t.Errorf("%s: status %d, want 400", name, code)
		}
		if !strings.Contains(ct, "application/json") {
			t.Errorf("%s: error content type %s, want JSON", name, ct)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil || m["error"] == nil {
			t.Errorf("%s: error body not JSON: %s", name, raw)
		}
	}
}

// TestRawEntryCodecsEvictTogether pins the atomic-lifetime contract of the
// raw-replay cache: one verbatim body that has been answered in both wire
// codecs holds both encodings in ONE entry under ONE key, so pinning protects
// both and eviction drops both — a split lifetime would leak one codec's
// body after the other is gone.
func TestRawEntryCodecsEvictTogether(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: 4, CacheShards: 1})
	body := []byte(volterraReq)

	// Settle the result, then replay once per response codec so the raw entry
	// accumulates both encodings under the single JSON-body key.
	for _, accept := range []string{"", "", BinContentType} {
		if code, _, _ := doRaw(t, ts, "/v1/solve", "", accept, body); code != 200 {
			t.Fatalf("solve: status %d", code)
		}
	}
	v, ok := srv.rawCache.getBytes(body)
	if !ok {
		t.Fatal("raw entry missing after both codecs answered")
	}
	e := v.(*rawEntry)
	if e.body[codecJSON] == nil || e.body[codecBin] == nil {
		t.Fatalf("raw entry not merged: json=%v bin=%v",
			e.body[codecJSON] != nil, e.body[codecBin] != nil)
	}

	// Pinned: the combined entry must ride out evictions with BOTH bodies.
	if _, ok := srv.rawCache.acquire(string(body)); !ok {
		t.Fatal("acquire failed")
	}
	churn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := []byte(fmt.Sprintf(`{"bench":"elliptic","seed":%d,"slack":3}`, i))
			// Twice: the first solves, the second stores the raw entry.
			for k := 0; k < 2; k++ {
				if code, _, _ := doRaw(t, ts, "/v1/solve", "", "", b); code != 200 {
					t.Fatalf("churn solve %d: status %d", i, code)
				}
			}
		}
	}
	churn(0, 10)
	if v, ok := srv.rawCache.getBytes(body); !ok {
		t.Fatal("pinned raw entry was evicted")
	} else if e := v.(*rawEntry); e.body[codecJSON] == nil || e.body[codecBin] == nil {
		t.Fatalf("pinned raw entry lost a codec body: json=%v bin=%v",
			e.body[codecJSON] != nil, e.body[codecBin] != nil)
	}

	// Released: the next churn wave evicts the entry, and with it both
	// codecs at once — neither can be served stale afterwards.
	srv.rawCache.release(string(body))
	churn(10, 20)
	if _, ok := srv.rawCache.getBytes(body); ok {
		t.Fatal("raw entry survived eviction churn after release")
	}
	before := srv.met.rawHits.Load()
	if code, _, _ := doRaw(t, ts, "/v1/solve", "", "", body); code != 200 {
		t.Fatal("re-solve after eviction failed")
	}
	if code, _, _ := doRaw(t, ts, "/v1/solve", "", BinContentType, body); code != 200 {
		t.Fatal("binary re-solve after eviction failed")
	}
	if got := srv.met.rawHits.Load(); got != before {
		t.Fatalf("request after eviction replayed raw (%d hits, had %d): a codec body leaked past eviction", got, before)
	}
}

func TestBinContentTypeNegotiation(t *testing.T) {
	for _, ct := range []string{
		BinContentType,
		BinContentType + "; v=1",
		"  " + BinContentType + "  ",
		BinContentType + " ; charset=utf-8",
	} {
		if !isBinContentType(ct) {
			t.Errorf("isBinContentType(%q) = false, want true", ct)
		}
	}
	for _, ct := range []string{"", "application/json", BinContentType + "2", "text/plain"} {
		if isBinContentType(ct) {
			t.Errorf("isBinContentType(%q) = true, want false", ct)
		}
	}
	if respCodecFor(true, "") != codecBin || respCodecFor(false, BinContentType) != codecBin {
		t.Error("binary request or Accept must select the binary response codec")
	}
	if respCodecFor(false, "application/json") != codecJSON || respCodecFor(false, "") != codecJSON {
		t.Error("plain requests must default to the JSON response codec")
	}
}

func TestEncodeBinSolveRequestRejectsUncarriableShapes(t *testing.T) {
	cases := map[string]*SolveRequest{
		"no source":        {Slack: ptrInt(4)},
		"graph, no table":  {Graph: json.RawMessage(`{"nodes":[{"name":"a","op":"x"}],"edges":[]}`), Deadline: 3},
		"bad graph JSON":   {Graph: json.RawMessage(`{`), Table: &TablePayload{Time: [][]int{{1}}, Cost: [][]int64{{1}}}, Deadline: 3},
		"bench, no table":  {Bench: "elliptic", Slack: ptrInt(4)},
		"graph + catalog":  {Graph: json.RawMessage(`{"nodes":[{"name":"a","op":"x"}],"edges":[]}`), Catalog: "generic3", Deadline: 3},
		"bad inline table": {Graph: json.RawMessage(`{"nodes":[{"name":"a","op":"x"}],"edges":[]}`), Table: &TablePayload{Time: [][]int{{0}}, Cost: [][]int64{{1}}}, Deadline: 3},
	}
	for name, req := range cases {
		if _, err := EncodeBinSolveRequest(req); err == nil {
			t.Errorf("%s: encode succeeded, want error", name)
		}
	}
	if _, err := EncodeBinBatchRequest(&BatchRequest{Entries: []SolveRequest{{Slack: ptrInt(1)}}}); err == nil {
		t.Error("batch encode with an uncarriable entry succeeded, want error")
	}
}

// TestDecodeBinResponseTruncations runs the response decoders over every
// prefix of a maximal valid frame: each truncation must error out cleanly.
func TestDecodeBinResponseTruncations(t *testing.T) {
	gap, lb := 0.5, int64(7)
	full := appendSolveRespFrame(nil, &SolveResponse{
		Source: "solve",
		SolveResult: SolveResult{
			Algorithm: "anytime", Deadline: 9, Cost: 44, Length: 8,
			Assignment: []int{1, 0}, Quality: "heuristic", Gap: &gap, LowerBound: &lb,
			Stage:    "anneal",
			Frontier: []FrontierPointPayload{{Deadline: 3, Cost: 60}},
			Schedule: &SchedulePayload{Start: []int{0, 1}, Instance: []int{0, 0}, Length: 8, Config: []int{1, 1}},
		},
	})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeBinSolveResponse(full[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(full))
		}
	}
	if _, err := DecodeBinSolveResponse(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("frame with trailing byte decoded without error")
	}
	if _, err := DecodeBinBatchResponse(full); err == nil {
		t.Fatal("solve frame accepted as a batch response")
	}

	bfull := appendBatchRespFrame(nil, &BatchResponse{
		Results: []BatchEntryResult{
			{Source: "cache", Result: &SolveResult{Algorithm: "auto", Deadline: 2, Assignment: []int{0}}},
			{Error: "boom", Status: 422},
		},
		Entries: 2, ElapsedMS: 1,
	})
	for i := 0; i < len(bfull); i++ {
		if _, err := DecodeBinBatchResponse(bfull[:i]); err == nil {
			t.Fatalf("batch prefix of %d/%d bytes decoded without error", i, len(bfull))
		}
	}
}

// TestDecodeBinRequestTruncations mirrors the sweep for the request side:
// every proper prefix of valid solve and batch request frames must come back
// as a 400 apiError.
func TestDecodeBinRequestTruncations(t *testing.T) {
	solve, err := EncodeBinSolveRequest(&SolveRequest{
		Graph:     json.RawMessage(`{"nodes":[{"name":"a","op":"x"},{"name":"b","op":"y"}],"edges":[{"from":"a","to":"b","delays":0}]}`),
		Table:     &TablePayload{Time: [][]int{{1, 2}, {2, 1}}, Cost: [][]int64{{3, 4}, {4, 3}}},
		Deadline:  9,
		Schedule:  true,
		TimeoutMS: 50,
		Algorithm: "tree",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(solve); i++ {
		if _, aerr := decodeSolveRequestBin(solve[:i]); aerr == nil {
			t.Fatalf("solve prefix of %d/%d bytes decoded without error", i, len(solve))
		} else if aerr.Status != 400 {
			t.Fatalf("solve prefix %d: status %d, want 400", i, aerr.Status)
		}
	}
	batch, err := EncodeBinBatchRequest(&BatchRequest{Entries: []SolveRequest{
		{Bench: "volterra", Seed: ptrInt64(1), Slack: ptrInt(2)},
		{Bench: "elliptic", Catalog: "generic3", Deadline: 40},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(batch); i++ {
		if _, aerr := decodeBatchRequestBin(batch[:i]); aerr == nil {
			t.Fatalf("batch prefix of %d/%d bytes decoded without error", i, len(batch))
		}
	}
	if _, aerr := decodeBatchRequestBin(solve); aerr == nil {
		t.Fatal("solve frame accepted as a batch request")
	}
}

// TestBinBatchSemanticErrorsIsolated pins the error-isolation contract: a
// bench-form entry naming an unknown benchmark is a per-entry 4xx that does
// not poison its siblings, matching the JSON batch path.
func TestBinBatchSemanticErrorsIsolated(t *testing.T) {
	enc, err := EncodeBinBatchRequest(&BatchRequest{Entries: []SolveRequest{
		{Bench: "volterra", Seed: ptrInt64(1), Slack: ptrInt(2)},
		{Bench: "nosuchbench", Seed: ptrInt64(1), Slack: ptrInt(2)},
		{Bench: "elliptic", Seed: ptrInt64(3), Slack: ptrInt(4)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	entries, aerr := decodeBatchRequestBin(enc)
	if aerr != nil {
		t.Fatalf("batch rejected wholesale: %v", aerr)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	if entries[0].spec == nil || entries[2].spec == nil {
		t.Fatal("valid sibling entries did not decode to specs")
	}
	if entries[1].aerr == nil || entries[1].spec != nil {
		t.Fatalf("unknown-bench entry: got spec=%v err=%v, want a per-entry error", entries[1].spec, entries[1].aerr)
	}
}
