package sim

import (
	"errors"
	"fmt"
	"sort"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// PeriodicTask is one periodic DAG job stream for hyperperiod simulation:
// the task's graph, its time/cost table, the assignment admission chose for
// it, and its period and relative deadline (in control steps). Precedence
// within a job is the zero-delay DAG portion, matching the assignment
// solvers; delayed edges are inter-iteration and ignored here.
type PeriodicTask struct {
	Graph    *dfg.Graph
	Table    *fu.Table
	Assign   hap.Assignment
	Period   int
	Deadline int
}

// PlacedTask couples a periodic task with where admission put it: a heavy
// task executes on its own dedicated Partition (FU instances per type,
// work-conserving typed list scheduling); a light task shares serialized
// Channel c with every other task of that channel (one node in flight per
// channel, deadline-monotonic arbitration at node boundaries).
type PlacedTask struct {
	Task      PeriodicTask
	Heavy     bool
	Partition []int
	Channel   int
}

// PeriodicReport is the outcome of a hyperperiod simulation.
type PeriodicReport struct {
	Horizon int // simulated steps (the hyperperiod)
	Jobs    int // job releases simulated
	Missed  int // jobs finishing after their absolute deadline
	// WorstResponse is the largest observed response time per task, in
	// placed-task order (0 for tasks that released no job).
	WorstResponse []int
}

// maxHyperperiod bounds the simulated horizon; harmonic task sets used by
// the differential tests stay far below it.
const maxHyperperiod = 1 << 22

// Hyperperiod returns the least common multiple of the tasks' periods, the
// natural simulation horizon of a synchronous periodic release pattern. It
// fails when the LCM exceeds maxHyperperiod (arbitrary-period sets can
// explode; simulate those piecewise).
func Hyperperiod(tasks []PlacedTask) (int, error) {
	h := 1
	for i, pt := range tasks {
		p := pt.Task.Period
		if p < 1 {
			return 0, fmt.Errorf("sim: task %d has non-positive period %d", i, p)
		}
		g := gcdInt(h, p)
		if h/g > maxHyperperiod/p {
			return 0, fmt.Errorf("sim: hyperperiod exceeds %d", maxHyperperiod)
		}
		h = h / g * p
	}
	return h, nil
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// SimulatePeriodic executes every job released in one synchronous
// hyperperiod and reports deadline misses: heavy tasks are list-scheduled
// on their dedicated typed partitions, light tasks are serialized per
// channel under deadline-monotonic node-boundary arbitration. The
// simulation is the ground truth the rta package's analytical admission is
// differentially tested against — an admitted placement must report zero
// misses. O(total node executions · log) per channel plus O(jobs · graph)
// for heavy tasks.
func SimulatePeriodic(tasks []PlacedTask) (PeriodicReport, error) {
	if len(tasks) == 0 {
		return PeriodicReport{}, errors.New("sim: no placed tasks")
	}
	h, err := Hyperperiod(tasks)
	if err != nil {
		return PeriodicReport{}, err
	}
	rep := PeriodicReport{Horizon: h, WorstResponse: make([]int, len(tasks))}
	channels := map[int][]int{} // channel -> placed-task indices
	for i, pt := range tasks {
		t := pt.Task
		if len(t.Assign) != t.Graph.N() {
			return PeriodicReport{}, fmt.Errorf("sim: task %d assignment covers %d of %d nodes", i, len(t.Assign), t.Graph.N())
		}
		if t.Deadline < 1 || t.Deadline > t.Period {
			return PeriodicReport{}, fmt.Errorf("sim: task %d deadline %d not in [1, period %d]", i, t.Deadline, t.Period)
		}
		if pt.Heavy {
			if err := simulateHeavy(&rep, i, pt, h); err != nil {
				return PeriodicReport{}, err
			}
		} else {
			channels[pt.Channel] = append(channels[pt.Channel], i)
		}
	}
	var chIDs []int
	for c := range channels {
		chIDs = append(chIDs, c)
	}
	sort.Ints(chIDs)
	for _, c := range chIDs {
		if err := simulateChannel(&rep, tasks, channels[c], h); err != nil {
			return PeriodicReport{}, err
		}
	}
	return rep, nil
}

// simulateHeavy runs every release of one heavy task on its dedicated
// partition with a work-conserving typed list scheduler (ready nodes start
// lowest-ID first whenever an FU of their type is free). Jobs are
// independent: the partition is dedicated and a job that meets its
// constrained deadline finishes before the next release.
func simulateHeavy(rep *PeriodicReport, ti int, pt PlacedTask, horizon int) error {
	t := pt.Task
	if len(pt.Partition) != t.Table.K() {
		return fmt.Errorf("sim: task %d partition covers %d of %d types", ti, len(pt.Partition), t.Table.K())
	}
	for v, ty := range t.Assign {
		if pt.Partition[ty] < 1 {
			return fmt.Errorf("sim: task %d node %d assigned type %d with no dedicated FU", ti, v, ty)
		}
	}
	makespan, err := listMakespan(t.Graph, t.Table, t.Assign, pt.Partition)
	if err != nil {
		return err
	}
	for r := 0; r < horizon; r += t.Period {
		rep.Jobs++
		if makespan > t.Deadline {
			rep.Missed++
		}
		if makespan > rep.WorstResponse[ti] {
			rep.WorstResponse[ti] = makespan
		}
	}
	return nil
}

// listMakespan list-schedules one DAG job on a typed partition and returns
// its makespan: at every step each free FU of type k picks the ready
// unstarted node of that type with the lowest ID, nodes run
// non-preemptively for their assigned time.
func listMakespan(g *dfg.Graph, tab *fu.Table, assign hap.Assignment, part []int) (int, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Pred(dfg.NodeID(v)))
	}
	free := append([]int(nil), part...)
	ready := make([]int, 0, n) // kept sorted ascending
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	type run struct{ finish, node int }
	var running []run // unsorted; scanned for min finish
	started, makespan, now := 0, 0, 0
	for started < n || len(running) > 0 {
		// Start every ready node that has a free FU of its type.
		for i := 0; i < len(ready); {
			v := ready[i]
			ty := assign[v]
			if free[ty] > 0 {
				free[ty]--
				w := tab.Time[v][ty]
				running = append(running, run{finish: now + w, node: v})
				started++
				ready = append(ready[:i], ready[i+1:]...)
			} else {
				i++
			}
		}
		if len(running) == 0 {
			if started < n {
				return 0, errors.New("sim: list scheduler stalled (cyclic zero-delay precedence?)")
			}
			break
		}
		// Advance to the earliest finish; complete everything due then.
		next := running[0].finish
		for _, r := range running[1:] {
			if r.finish < next {
				next = r.finish
			}
		}
		now = next
		for i := 0; i < len(running); {
			if running[i].finish == now {
				v := running[i].node
				free[assign[v]]++
				if now > makespan {
					makespan = now
				}
				for _, s := range g.Succ(dfg.NodeID(v)) {
					indeg[s]--
					if indeg[s] == 0 {
						ready = insertSorted(ready, int(s))
					}
				}
				running = append(running[:i], running[i+1:]...)
			} else {
				i++
			}
		}
	}
	return makespan, nil
}

// insertSorted inserts v into ascending-sorted xs.
func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// chanJob is one released job of a channel member during simulation.
type chanJob struct {
	member  int // index into the channel's member list
	release int
	dl      int // absolute deadline
	indeg   []int
	ready   []int // ready unrun node IDs, sorted ascending
	left    int   // nodes not yet completed
}

// simulateChannel serializes every job of the channel's member tasks: at
// each node boundary the pending job with the highest deadline-monotonic
// priority (ties: smaller period, lower task index, earlier release) runs
// its lowest-ID ready node to completion on the channel's FU of that type.
func simulateChannel(rep *PeriodicReport, tasks []PlacedTask, memberIdx []int, horizon int) error {
	// Priority order of members: deadline-monotonic.
	prio := append([]int(nil), memberIdx...)
	sort.Slice(prio, func(a, b int) bool {
		ta, tb := tasks[prio[a]].Task, tasks[prio[b]].Task
		if ta.Deadline != tb.Deadline {
			return ta.Deadline < tb.Deadline
		}
		if ta.Period != tb.Period {
			return ta.Period < tb.Period
		}
		return prio[a] < prio[b]
	})
	rank := map[int]int{}
	for r, ti := range prio {
		rank[ti] = r
	}

	// All releases in the hyperperiod, as a time-ordered list.
	type release struct{ at, ti int }
	var rels []release
	for _, ti := range memberIdx {
		t := tasks[ti].Task
		for r := 0; r < horizon; r += t.Period {
			rels = append(rels, release{at: r, ti: ti})
		}
	}
	sort.Slice(rels, func(a, b int) bool {
		if rels[a].at != rels[b].at {
			return rels[a].at < rels[b].at
		}
		return rank[rels[a].ti] < rank[rels[b].ti]
	})

	var pending []*chanJob // released, unfinished
	now, nextRel := 0, 0
	admitReleases := func() {
		for nextRel < len(rels) && rels[nextRel].at <= now {
			ti := rels[nextRel].ti
			t := tasks[ti].Task
			j := &chanJob{member: ti, release: rels[nextRel].at, dl: rels[nextRel].at + t.Deadline, left: t.Graph.N()}
			j.indeg = make([]int, t.Graph.N())
			for v := 0; v < t.Graph.N(); v++ {
				j.indeg[v] = len(t.Graph.Pred(dfg.NodeID(v)))
				if j.indeg[v] == 0 {
					j.ready = append(j.ready, v)
				}
			}
			pending = append(pending, j)
			nextRel++
		}
	}
	finish := func(j *chanJob) {
		resp := now - j.release
		rep.Jobs++
		if now > j.dl {
			rep.Missed++
		}
		if resp > rep.WorstResponse[j.member] {
			rep.WorstResponse[j.member] = resp
		}
	}
	for nextRel < len(rels) || len(pending) > 0 {
		admitReleases()
		if len(pending) == 0 {
			now = rels[nextRel].at // idle until the next release
			continue
		}
		// Highest-priority pending job (earlier release breaks same-task ties).
		best := 0
		for i := 1; i < len(pending); i++ {
			a, b := pending[i], pending[best]
			if rank[a.member] < rank[b.member] || (a.member == b.member && a.release < b.release) {
				best = i
			}
		}
		j := pending[best]
		v := j.ready[0]
		j.ready = j.ready[1:]
		t := tasks[j.member].Task
		now += t.Table.Time[v][t.Assign[v]] // the channel runs one node at a time
		for _, s := range t.Graph.Succ(dfg.NodeID(v)) {
			j.indeg[s]--
			if j.indeg[s] == 0 {
				j.ready = insertSorted(j.ready, int(s))
			}
		}
		j.left--
		if j.left == 0 {
			finish(j)
			pending = append(pending[:best], pending[best+1:]...)
		}
	}
	return nil
}
