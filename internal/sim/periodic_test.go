package sim

import (
	"strings"
	"testing"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

func TestHyperperiod(t *testing.T) {
	mk := func(periods ...int) []PlacedTask {
		out := make([]PlacedTask, len(periods))
		for i, p := range periods {
			out[i].Task.Period = p
		}
		return out
	}
	h, err := Hyperperiod(mk(4, 6, 10))
	if err != nil || h != 60 {
		t.Fatalf("lcm(4,6,10) = %d, %v; want 60", h, err)
	}
	if _, err := Hyperperiod(mk(0)); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Hyperperiod(mk(maxHyperperiod, maxHyperperiod-1)); err == nil {
		t.Fatal("hyperperiod overflow accepted")
	}
}

// Four independent 2-step nodes on 2 FUs: two waves, makespan 4.
func TestSimulateHeavy(t *testing.T) {
	g := dfg.New()
	for _, name := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(name, "op")
	}
	pt := PlacedTask{
		Task: PeriodicTask{
			Graph:    g,
			Table:    fu.UniformTable(4, []int{2}, []int64{1}),
			Assign:   hap.Assignment{0, 0, 0, 0},
			Period:   8,
			Deadline: 8,
		},
		Heavy:     true,
		Partition: []int{2},
	}
	rep, err := SimulatePeriodic([]PlacedTask{pt})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if rep.Horizon != 8 || rep.Jobs != 1 || rep.Missed != 0 {
		t.Fatalf("report %+v, want horizon 8, 1 job, 0 missed", rep)
	}
	if rep.WorstResponse[0] != 4 {
		t.Fatalf("response %d, want 4 (two waves of two nodes)", rep.WorstResponse[0])
	}
	// One FU: serial, makespan 8; deadline 6 then misses every job.
	pt.Partition = []int{1}
	pt.Task.Deadline = 6
	rep, err = SimulatePeriodic([]PlacedTask{pt})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if rep.Missed != 1 || rep.WorstResponse[0] != 8 {
		t.Fatalf("report %+v, want 1 miss at response 8", rep)
	}
}

// Two chains sharing a serialized channel: the short-deadline task preempts
// at node boundaries only.
func TestSimulateChannel(t *testing.T) {
	mk := func(n, period, dl int) PlacedTask {
		return PlacedTask{
			Task: PeriodicTask{
				Graph:    dfg.Chain(n),
				Table:    fu.UniformTable(n, []int{2}, []int64{1}),
				Assign:   make(hap.Assignment, n),
				Period:   period,
				Deadline: dl,
			},
			Channel: 0,
		}
	}
	hi := mk(2, 8, 8)   // C=4
	lo := mk(3, 16, 16) // C=6
	rep, err := SimulatePeriodic([]PlacedTask{lo, hi})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if rep.Missed != 0 {
		t.Fatalf("report %+v, want no misses", rep)
	}
	// hi is blocked by at most one lo node (2) then runs 4 → worst 6.
	if rep.WorstResponse[1] > 6 {
		t.Fatalf("hi response %d, want <= 6", rep.WorstResponse[1])
	}
	// lo: 6 own + interference from hi jobs.
	if rep.WorstResponse[0] > 14 {
		t.Fatalf("lo response %d, want <= 14", rep.WorstResponse[0])
	}
	if rep.Jobs != 2+1 {
		t.Fatalf("jobs = %d, want 3 (two hi releases, one lo)", rep.Jobs)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulatePeriodic(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	g := dfg.Chain(2)
	tab := fu.UniformTable(2, []int{1}, []int64{1})
	bad := []PlacedTask{{Task: PeriodicTask{Graph: g, Table: tab, Assign: hap.Assignment{0}, Period: 4, Deadline: 4}}}
	if _, err := SimulatePeriodic(bad); err == nil || !strings.Contains(err.Error(), "assignment") {
		t.Fatalf("short assignment: %v", err)
	}
	bad = []PlacedTask{{Task: PeriodicTask{Graph: g, Table: tab, Assign: hap.Assignment{0, 0}, Period: 4, Deadline: 5}}}
	if _, err := SimulatePeriodic(bad); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("unconstrained deadline: %v", err)
	}
	heavy := []PlacedTask{{
		Task:  PeriodicTask{Graph: g, Table: tab, Assign: hap.Assignment{0, 0}, Period: 4, Deadline: 4},
		Heavy: true, Partition: []int{0},
	}}
	if _, err := SimulatePeriodic(heavy); err == nil || !strings.Contains(err.Error(), "no dedicated FU") {
		t.Fatalf("empty partition: %v", err)
	}
}
