// Package sim is a cycle-accurate simulator for the special-purpose
// architectures the two-phase flow synthesizes: it executes a static
// schedule on the chosen FU configuration over many loop iterations,
// verifies the execution dynamically (FU occupancy and inter-iteration
// data availability, independent of the static validator in package
// sched), and reports throughput and per-type utilization.
//
// A static schedule of one iteration is repeated with some initiation
// interval II: iteration i starts at absolute step i·II + 1. With
// II = schedule length the iterations never overlap (the paper's setting);
// smaller II overlaps successive iterations, which is legal as long as no
// FU instance is claimed twice at the same step and every inter-iteration
// dependence (edge with d delays: the consumer of iteration i reads the
// producer of iteration i−d) is still satisfied. MinInitiationInterval
// computes the smallest legal II for a given schedule — the throughput the
// synthesized datapath can actually sustain.
package sim

import (
	"errors"
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

// Stats is the outcome of a simulation run.
type Stats struct {
	Iterations  int
	II          int       // initiation interval used
	TotalCycles int       // last occupied absolute step
	Ops         int       // node executions simulated
	BusyCycles  []int64   // per FU type, cycles spent executing
	Utilization []float64 // per FU type: busy / (instances · TotalCycles)
	// EnergyPerIteration is the summed execution cost of one iteration
	// under the schedule's assignment (the phase-one objective).
	EnergyPerIteration int64
}

// MinInitiationInterval returns the smallest II at which the schedule can
// be repeated: the maximum of the resource-conflict bound (no FU instance
// occupied twice at the same step modulo II) and the dependence bound
// (every d-delay edge allows the producer d·II steps of slack).
func MinInitiationInterval(g *dfg.Graph, s *sched.Schedule, cfg sched.Config) (int, error) {
	if err := sched.ValidateSchedule(g, s, cfg, s.Length); err != nil {
		return 0, err
	}
	for ii := 1; ii <= s.Length; ii++ {
		if legalII(g, s, cfg, ii) {
			return ii, nil
		}
	}
	return s.Length, nil
}

func legalII(g *dfg.Graph, s *sched.Schedule, cfg sched.Config, ii int) bool {
	// Resource: wrap each instance's busy intervals modulo ii and check
	// single occupancy.
	for t := range cfg {
		for inst := 0; inst < cfg[t]; inst++ {
			occ := make([]int, ii)
			for v := 0; v < g.N(); v++ {
				if int(s.Assign[v]) != t || s.Instance[v] != inst {
					continue
				}
				for step := s.Start[v]; step <= s.Finish(dfg.NodeID(v)); step++ {
					occ[step%ii]++
				}
			}
			for _, c := range occ {
				if c > 1 {
					return false
				}
			}
		}
	}
	// Dependence: edge (u,v,d) with d >= 1 requires
	// start(v) + d·ii > finish(u), i.e. the value of iteration i−d is
	// ready before iteration i needs it. Zero-delay edges are already
	// satisfied within the iteration by schedule validity.
	for _, e := range g.Edges() {
		if e.Delays == 0 {
			continue
		}
		if s.Start[e.To]+e.Delays*ii <= s.Finish(e.From) {
			return false
		}
	}
	return true
}

// Run simulates `iterations` repetitions of the schedule at initiation
// interval ii (use the schedule length for the paper's non-overlapped
// execution, or MinInitiationInterval for maximum throughput). Every FU
// instance's occupancy and every data dependence is re-verified
// dynamically step by step; a violation returns an error naming the
// offending nodes.
func Run(g *dfg.Graph, tab *fu.Table, s *sched.Schedule, cfg sched.Config, iterations, ii int) (Stats, error) {
	if iterations < 1 {
		return Stats{}, errors.New("sim: need at least one iteration")
	}
	if ii < 1 {
		return Stats{}, fmt.Errorf("sim: initiation interval %d < 1", ii)
	}
	if err := sched.ValidateSchedule(g, s, cfg, s.Length); err != nil {
		return Stats{}, err
	}

	total := (iterations-1)*ii + s.Length
	// occupancy[type][instance][step] — steps are 1-based.
	occupancy := make([][][]int32, len(cfg))
	for t := range cfg {
		occupancy[t] = make([][]int32, cfg[t])
		for i := range occupancy[t] {
			occupancy[t][i] = make([]int32, total+1)
		}
	}

	st := Stats{
		Iterations: iterations,
		II:         ii,
		BusyCycles: make([]int64, len(cfg)),
	}
	for iter := 0; iter < iterations; iter++ {
		base := iter * ii
		for v := 0; v < g.N(); v++ {
			vid := dfg.NodeID(v)
			start := base + s.Start[v]
			finish := base + s.Finish(vid)
			t := s.Assign[v]
			inst := s.Instance[v]
			for step := start; step <= finish; step++ {
				occupancy[t][inst][step]++
				if occupancy[t][inst][step] > 1 {
					return Stats{}, fmt.Errorf("sim: FU %d[%d] double-booked at step %d (node %s, iteration %d)",
						t, inst, step, g.Node(vid).Name, iter)
				}
				st.BusyCycles[t]++
			}
			st.Ops++
		}
		// Data availability: every edge's producer iteration must have
		// finished strictly before the consumer starts.
		for _, e := range g.Edges() {
			prodIter := iter - e.Delays
			if prodIter < 0 {
				continue // initial token from before the simulation window
			}
			prodFinish := prodIter*ii + s.Finish(e.From)
			consStart := base + s.Start[e.To]
			if prodFinish >= consStart {
				return Stats{}, fmt.Errorf("sim: %s (iteration %d, finishes %d) not ready for %s (iteration %d, starts %d)",
					g.Node(e.From).Name, prodIter, prodFinish,
					g.Node(e.To).Name, iter, consStart)
			}
		}
	}
	st.TotalCycles = total
	st.Utilization = make([]float64, len(cfg))
	for t := range cfg {
		if cfg[t] > 0 {
			st.Utilization[t] = float64(st.BusyCycles[t]) / (float64(cfg[t]) * float64(total))
		}
	}
	if tab != nil {
		st.EnergyPerIteration = hap.CostOf(tab, s.Assign)
	}
	return st, nil
}

// Report renders the stats as a short human-readable block.
func (st Stats) Report(lib *fu.Library) string {
	out := fmt.Sprintf("%d iterations at II=%d: %d cycles, %d ops", st.Iterations, st.II, st.TotalCycles, st.Ops)
	if st.EnergyPerIteration > 0 {
		out += fmt.Sprintf(", %d energy/iter", st.EnergyPerIteration)
	}
	out += "\n"
	for t := range st.Utilization {
		name := fmt.Sprintf("type %d", t)
		if lib != nil {
			name = lib.Name(fu.TypeID(t))
		}
		out += fmt.Sprintf("  %-6s %5.1f%% utilized (%d busy cycles)\n", name, 100*st.Utilization[t], st.BusyCycles[t])
	}
	return out
}
