package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
	"hetsynth/internal/sched"
)

// chainSetup builds a 3-node chain with unit times scheduled on one FU.
func chainSetup(t testing.TB) (*dfg.Graph, *fu.Table, *sched.Schedule, sched.Config) {
	t.Helper()
	g := dfg.Chain(3)
	tab := fu.UniformTable(3, []int{1}, []int64{2})
	s, cfg, err := sched.MinRSchedule(g, tab, make(hap.Assignment, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	return g, tab, s, cfg
}

func TestRunNonOverlapped(t *testing.T) {
	g, tab, s, cfg := chainSetup(t)
	st, err := Run(g, tab, s, cfg, 4, s.Length)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCycles != 4*3 {
		t.Fatalf("TotalCycles = %d, want 12", st.TotalCycles)
	}
	if st.Ops != 12 {
		t.Fatalf("Ops = %d, want 12", st.Ops)
	}
	// One FU busy every cycle: utilization 100%.
	if st.Utilization[0] < 0.999 {
		t.Fatalf("utilization = %v, want 1.0", st.Utilization)
	}
	if st.EnergyPerIteration != 6 {
		t.Fatalf("energy/iter = %d, want 6", st.EnergyPerIteration)
	}
}

func TestMinIIChainOnOneFU(t *testing.T) {
	g, _, s, cfg := chainSetup(t)
	// One FU executing 3 unit ops: resource bound forces II = 3.
	ii, err := MinInitiationInterval(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ii != 3 {
		t.Fatalf("min II = %d, want 3", ii)
	}
}

func TestMinIIParallelFUs(t *testing.T) {
	// 3 independent unit ops on 3 FUs, schedule length 1: II can be 1.
	g := dfg.New()
	g.MustAddNode("a", "")
	g.MustAddNode("b", "")
	g.MustAddNode("c", "")
	tab := fu.UniformTable(3, []int{1}, []int64{1})
	s, cfg, err := sched.MinRSchedule(g, tab, make(hap.Assignment, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	ii, err := MinInitiationInterval(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ii != 1 {
		t.Fatalf("min II = %d, want 1", ii)
	}
	// Overlapped execution at II=1 must verify dynamically.
	if _, err := Run(g, tab, s, cfg, 10, ii); err != nil {
		t.Fatal(err)
	}
}

func TestMinIIDependenceBound(t *testing.T) {
	// a -> b with b -> a carrying 1 delay: iteration i's a needs b from
	// i-1, so II must cover the whole recurrence: with unit times and
	// schedule a@1, b@2, II must satisfy start(a) + 1·II > finish(b):
	// 1 + II > 2, II >= 2.
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 1)
	tab := fu.UniformTable(2, []int{1}, []int64{1})
	// Two FUs so resources do not dominate the bound.
	cfg := sched.Config{2}
	s, err := sched.ListSchedule(g, tab, make(hap.Assignment, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ii, err := MinInitiationInterval(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ii != 2 {
		t.Fatalf("min II = %d, want 2 (recurrence bound)", ii)
	}
	if _, err := Run(g, tab, s, cfg, 8, ii); err != nil {
		t.Fatal(err)
	}
	// II = 1 must be rejected dynamically.
	if _, err := Run(g, tab, s, cfg, 8, 1); err == nil {
		t.Fatal("II=1 should violate the recurrence")
	}
}

func TestRunDetectsDoubleBooking(t *testing.T) {
	g, tab, s, cfg := chainSetup(t)
	// Overlapping at II=1 double-books the single FU.
	if _, err := Run(g, tab, s, cfg, 3, 1); err == nil {
		t.Fatal("double-booking not detected")
	}
}

func TestRunInputValidation(t *testing.T) {
	g, tab, s, cfg := chainSetup(t)
	if _, err := Run(g, tab, s, cfg, 0, 3); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Run(g, tab, s, cfg, 2, 0); err == nil {
		t.Error("zero II accepted")
	}
	bad := *s
	bad.Start = []int{0, 0, 0}
	if _, err := Run(g, tab, &bad, cfg, 2, 3); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestReportMentionsTypes(t *testing.T) {
	g, tab, s, cfg := chainSetup(t)
	st, err := Run(g, tab, s, cfg, 2, s.Length)
	if err != nil {
		t.Fatal(err)
	}
	lib := fu.MustLibrary(fu.Type{Name: "ALU"})
	rep := st.Report(lib)
	if !strings.Contains(rep, "ALU") || !strings.Contains(rep, "utilized") {
		t.Fatalf("report missing fields:\n%s", rep)
	}
	if !strings.Contains(st.Report(nil), "type 0") {
		t.Fatal("nil-library report broken")
	}
}

// TestSimulatorAcceptsEverySynthesizedSchedule is the integration property:
// whatever the two-phase flow produces must simulate cleanly, both
// non-overlapped and at the computed minimum initiation interval.
func TestSimulatorAcceptsEverySynthesizedSchedule(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2+rng.Intn(2))
		min, err := hap.MinMakespan(g, tab)
		if err != nil {
			return false
		}
		p := hap.Problem{Graph: g, Table: tab, Deadline: min + rng.Intn(6)}
		sol, err := hap.AssignRepeat(p)
		if err != nil {
			return false
		}
		s, cfg, err := sched.MinRSchedule(g, tab, sol.Assign, p.Deadline)
		if err != nil {
			return false
		}
		if _, err := Run(g, tab, s, cfg, 5, s.Length); err != nil {
			return false
		}
		ii, err := MinInitiationInterval(g, s, cfg)
		if err != nil || ii > s.Length {
			return false
		}
		_, err = Run(g, tab, s, cfg, 5, ii)
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationWithinBounds: utilization is a fraction and busy cycles
// equal the summed execution times across iterations.
func TestUtilizationWithinBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := dfg.RandomDAG(rng, n, 0.3)
		tab := fu.RandomTable(rng, n, 2)
		a := make(hap.Assignment, n)
		for v := range a {
			a[v] = fu.TypeID(rng.Intn(2))
		}
		length, _, err := g.LongestPath(hap.Times(tab, a))
		if err != nil {
			return false
		}
		s, cfg, err := sched.MinRSchedule(g, tab, a, length+2)
		if err != nil {
			return false
		}
		iters := 1 + rng.Intn(5)
		st, err := Run(g, tab, s, cfg, iters, s.Length)
		if err != nil {
			return false
		}
		var wantBusy int64
		for v := 0; v < n; v++ {
			wantBusy += int64(tab.Time[v][a[v]]) * int64(iters)
		}
		var gotBusy int64
		for _, b := range st.BusyCycles {
			gotBusy += b
		}
		if gotBusy != wantBusy {
			return false
		}
		for _, u := range st.Utilization {
			if u < 0 || u > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
