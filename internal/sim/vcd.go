package sim

import (
	"fmt"
	"io"
	"sort"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/sched"
)

// WriteVCD dumps the occupancy of every FU instance over `iterations`
// repetitions of the schedule at initiation interval ii as a Value Change
// Dump file, the standard waveform format (viewable in GTKWave and
// friends). Each FU instance is one string-valued signal carrying the name
// of the node it is executing, or "idle".
//
// The dump is a faithful replay of what Run simulates; it exists so the
// synthesized architectures can be inspected with ordinary hardware
// tooling.
func WriteVCD(w io.Writer, g *dfg.Graph, lib *fu.Library, s *sched.Schedule, cfg sched.Config, iterations, ii int) error {
	if iterations < 1 || ii < 1 {
		return fmt.Errorf("sim: need iterations >= 1 and ii >= 1")
	}
	if err := sched.ValidateSchedule(g, s, cfg, s.Length); err != nil {
		return err
	}

	type signal struct {
		id   string // VCD identifier code
		name string
	}
	var signals []signal
	sigIndex := func(t, inst int) int {
		n := 0
		for tt := 0; tt < t; tt++ {
			n += cfg[tt]
		}
		return n + inst
	}
	code := func(i int) string { return fmt.Sprintf("s%d", i) }
	for t := range cfg {
		tname := fmt.Sprintf("type%d", t)
		if lib != nil {
			tname = lib.Name(fu.TypeID(t))
		}
		for i := 0; i < cfg[t]; i++ {
			signals = append(signals, signal{
				id:   code(len(signals)),
				name: fmt.Sprintf("%s_%d", tname, i),
			})
		}
	}

	fmt.Fprintf(w, "$timescale 1ns $end\n$scope module datapath $end\n")
	for _, sg := range signals {
		// String-valued signals are modeled as real-sized wires in plain
		// VCD; use the string-change extension ($var string) understood by
		// GTKWave.
		fmt.Fprintf(w, "$var string 1 %s %s $end\n", sg.id, sg.name)
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")

	// busy[step] per signal: node name or "".
	total := (iterations-1)*ii + s.Length
	occ := make([][]string, len(signals))
	for i := range occ {
		occ[i] = make([]string, total+1)
	}
	for iter := 0; iter < iterations; iter++ {
		base := iter * ii
		for v := 0; v < g.N(); v++ {
			idx := sigIndex(int(s.Assign[v]), s.Instance[v])
			for step := base + s.Start[v]; step <= base+s.Finish(dfg.NodeID(v)); step++ {
				occ[idx][step] = g.Node(dfg.NodeID(v)).Name
			}
		}
	}

	last := make([]string, len(signals))
	for i := range last {
		last[i] = "\x00" // force an initial dump
	}
	for step := 1; step <= total; step++ {
		var changes []string
		for i := range signals {
			val := occ[i][step]
			if val == "" {
				val = "idle"
			}
			if val != last[i] {
				changes = append(changes, fmt.Sprintf("s%s %s", val, signals[i].id))
				last[i] = val
			}
		}
		if len(changes) > 0 {
			fmt.Fprintf(w, "#%d\n", step)
			sort.Strings(changes)
			for _, c := range changes {
				fmt.Fprintln(w, c)
			}
		}
	}
	fmt.Fprintf(w, "#%d\n", total+1)
	return nil
}
