package sim

import (
	"bytes"
	"strings"
	"testing"

	"hetsynth/internal/fu"
)

func TestWriteVCD(t *testing.T) {
	g, tab, s, cfg := chainSetup(t)
	lib := fu.MustLibrary(fu.Type{Name: "ALU"})
	var buf bytes.Buffer
	if err := WriteVCD(&buf, g, lib, s, cfg, 2, s.Length); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$var string 1 s0 ALU_0", "$enddefinitions",
		"#1", "sv1 s0", "sv2 s0", "sv3 s0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Two iterations of a 3-step schedule: timestamps up to #7 (end mark).
	if !strings.Contains(out, "#6") {
		t.Errorf("second iteration missing:\n%s", out)
	}
	_ = tab
}

func TestWriteVCDIdlePeriods(t *testing.T) {
	// Two FUs but a serial chain: the second instance shows "idle".
	g, tab, s, _ := chainSetup(t)
	cfg := []int{2}
	// Re-validate against the wider config (still valid).
	var buf bytes.Buffer
	if err := WriteVCD(&buf, g, nil, s, cfg, 1, s.Length); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sidle s1") {
		t.Errorf("idle signal missing:\n%s", buf.String())
	}
	_ = tab
}

func TestWriteVCDValidation(t *testing.T) {
	g, _, s, cfg := chainSetup(t)
	var buf bytes.Buffer
	if err := WriteVCD(&buf, g, nil, s, cfg, 0, 3); err == nil {
		t.Error("zero iterations accepted")
	}
	if err := WriteVCD(&buf, g, nil, s, cfg, 1, 0); err == nil {
		t.Error("zero II accepted")
	}
	bad := *s
	bad.Start = []int{0, 0, 0}
	if err := WriteVCD(&buf, g, nil, &bad, cfg, 1, 3); err == nil {
		t.Error("invalid schedule accepted")
	}
}
