// Package texttab renders aligned plain-text tables: the output format of
// cmd/experiments and the CLIs. Cells are strings; column widths adapt to
// the longest cell; alignment is per column.
package texttab

import (
	"fmt"
	"strings"
)

// Align selects cell alignment within a column.
type Align int

// Column alignments.
const (
	Left Align = iota
	Right
)

// Table accumulates rows and renders them aligned.
type Table struct {
	header []string
	align  []Align
	rows   [][]string
	seps   map[int]bool // row indices after which a separator line goes
}

// New builds a table with the given column headers, all left-aligned.
func New(header ...string) *Table {
	t := &Table{header: header, align: make([]Align, len(header)), seps: map[int]bool{}}
	return t
}

// AlignRight marks the given columns (by index) right-aligned, which reads
// better for numbers.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.align) {
			t.align[c] = Right
		}
	}
	return t
}

// Row appends a row; values are rendered with fmt.Sprint. Short rows are
// padded with empty cells, long rows are an error surfaced at render time
// via a panic (a programming error, not input-dependent).
func (t *Table) Row(cells ...interface{}) *Table {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("texttab: row has %d cells, table has %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(t.header))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
	return t
}

// Separator inserts a horizontal rule after the last appended row.
func (t *Table) Separator() *Table {
	t.seps[len(t.rows)] = true
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if t.align[i] == Right {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	rule := func() {
		total := 0
		for i, w := range widths {
			if i > 0 {
				total += 2
			}
			total += w
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule()
	for i, row := range t.rows {
		writeRow(row)
		if t.seps[i+1] {
			rule()
		}
	}
	return b.String()
}
