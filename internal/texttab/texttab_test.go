package texttab

import (
	"strings"
	"testing"
)

func TestAlignmentAndWidths(t *testing.T) {
	tbl := New("name", "cost").AlignRight(1)
	tbl.Row("short", 5)
	tbl.Row("a-much-longer-name", 12345)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Right-aligned numbers end at the same column.
	if !strings.HasSuffix(lines[2], "    5") {
		t.Errorf("numeric cell not right-aligned: %q", lines[2])
	}
	if !strings.HasSuffix(lines[3], "12345") {
		t.Errorf("numeric cell mangled: %q", lines[3])
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows have different widths: %q vs %q", lines[2], lines[3])
	}
}

func TestShortRowsPadded(t *testing.T) {
	tbl := New("a", "b", "c")
	tbl.Row("x")
	out := tbl.String()
	if !strings.Contains(out, "x") {
		t.Fatalf("row lost:\n%s", out)
	}
}

func TestSeparator(t *testing.T) {
	tbl := New("a")
	tbl.Row("1").Separator().Row("2")
	out := tbl.String()
	if strings.Count(out, "-") < 2 {
		t.Fatalf("separator missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, rule, row, rule, row
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
}

func TestTooManyCellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-wide row")
		}
	}()
	New("a").Row("1", "2")
}

func TestAlignRightIgnoresBadIndices(t *testing.T) {
	tbl := New("a").AlignRight(-1, 5, 0)
	tbl.Row("x")
	if !strings.Contains(tbl.String(), "x") {
		t.Fatal("table broken by out-of-range align indices")
	}
}
