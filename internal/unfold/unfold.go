// Package unfold implements loop unfolding (also called unrolling or
// blocking) of cyclic data-flow graphs, after Chao and Sha, "Scheduling
// data-flow graphs via retiming and unfolding" (reference [6] of the
// paper).
//
// Unfolding by factor f replaces the DFG with one that executes f
// consecutive loop iterations per schedule period: every node gets f
// copies (copy i computes iteration i of the block), and an edge u→v with
// d delays becomes, for each i in 0..f−1, an edge from copy i of u to copy
// (i+d) mod f of v carrying ⌊(i+d)/f⌋ delays. Inter-iteration parallelism
// that retiming alone cannot expose becomes intra-block parallelism, which
// lets the average per-iteration schedule length approach the loop's
// iteration bound.
package unfold

import (
	"fmt"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// Unfold returns the f-unfolded version of g. Copy i of node "x" is named
// "x@i". The zero-delay DAG portion of the result is acyclic whenever g's
// is (unfolding preserves schedulability).
func Unfold(g *dfg.Graph, f int) (*dfg.Graph, error) {
	if f < 1 {
		return nil, fmt.Errorf("unfold: factor %d < 1", f)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := dfg.New()
	ids := make([][]dfg.NodeID, g.N()) // ids[v][i]: copy i of node v
	for _, n := range g.Nodes() {
		ids[n.ID] = make([]dfg.NodeID, f)
		for i := 0; i < f; i++ {
			id, err := out.AddNode(fmt.Sprintf("%s@%d", n.Name, i), n.Op)
			if err != nil {
				return nil, err
			}
			ids[n.ID][i] = id
		}
	}
	for _, e := range g.Edges() {
		for i := 0; i < f; i++ {
			to := (i + e.Delays) % f
			d := (i + e.Delays) / f
			if err := out.AddEdge(ids[e.From][i], ids[e.To][to], d); err != nil {
				return nil, err
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("unfold: internal error: unfolded graph invalid: %w", err)
	}
	return out, nil
}

// LiftTable expands a per-node time/cost table of g onto the f copies of
// each node, so that the heterogeneous assignment algorithms run unchanged
// on the unfolded graph.
func LiftTable(t *fu.Table, f int) *fu.Table {
	out := fu.NewTable(t.N()*f, t.K())
	for v := 0; v < t.N(); v++ {
		for i := 0; i < f; i++ {
			out.MustSet(v*f+i, t.Time[v], t.Cost[v])
		}
	}
	return out
}

// FoldAssignment maps an assignment of the unfolded graph back to per-copy
// assignments of the original nodes: result[v][i] is the type of copy i of
// node v. With heterogeneous FUs different copies may legitimately use
// different types (that is the extra freedom unfolding buys).
func FoldAssignment(a hap.Assignment, n, f int) [][]fu.TypeID {
	out := make([][]fu.TypeID, n)
	for v := 0; v < n; v++ {
		out[v] = make([]fu.TypeID, f)
		for i := 0; i < f; i++ {
			out[v][i] = a[v*f+i]
		}
	}
	return out
}

// IterationBound computes the loop's theoretical throughput limit
// max over cycles of (total node time on the cycle / total delays on the
// cycle), the floor no schedule can beat regardless of resources. It is
// computed by binary search on the answer using a Bellman–Ford
// positive-cycle test, and returns 0/1 for acyclic graphs (no bound).
//
// The search runs on the integer grid with denominator totalDelays², on
// which any two distinct cycle ratios are separated, so the returned
// num/den is the smallest grid point at or above the true bound:
// ⌈ratio·den⌉/den, exact to within 1/totalDelays².
func IterationBound(g *dfg.Graph, times []int) (num, den int, err error) {
	if len(times) != g.N() {
		return 0, 0, fmt.Errorf("unfold: %d times for %d nodes", len(times), g.N())
	}
	// Collect candidate ratios implicitly: test feasibility of ratio p/q
	// ("every cycle has time <= (p/q)·delays") via node potentials.
	// Feasible(p, q) iff the graph with edge weight q·t(u) − p·d(e) has no
	// positive cycle (longest-path feasibility via Bellman–Ford).
	feasible := func(p, q int) bool {
		n := g.N()
		dist := make([]int64, n)
		for iter := 0; iter < n; iter++ {
			changed := false
			for _, e := range g.Edges() {
				w := int64(q)*int64(times[e.From]) - int64(p)*int64(e.Delays)
				if dist[e.From]+w > dist[e.To] {
					dist[e.To] = dist[e.From] + w
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		// One more relaxation detects a positive cycle.
		for _, e := range g.Edges() {
			w := int64(q)*int64(times[e.From]) - int64(p)*int64(e.Delays)
			if dist[e.From]+w > dist[e.To] {
				return false
			}
		}
		return true
	}

	totalDelay := 0
	totalTime := 0
	hasCycleEdge := false
	for _, e := range g.Edges() {
		totalDelay += e.Delays
		if e.Delays > 0 {
			hasCycleEdge = true
		}
	}
	for _, t := range times {
		totalTime += t
	}
	if !hasCycleEdge || totalDelay == 0 {
		return 0, 1, nil // acyclic: no iteration bound
	}
	q := totalDelay * totalDelay
	lo, hi := 0, totalTime*q
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible(mid, q) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, q, nil
}
