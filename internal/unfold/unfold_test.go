package unfold

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetsynth/internal/dfg"
	"hetsynth/internal/fu"
	"hetsynth/internal/hap"
)

// loop builds a -> b -> c with a 2-delay feedback c -> a, unit times.
func loop() *dfg.Graph {
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 2)
	return g
}

func TestUnfoldShape(t *testing.T) {
	g := loop()
	u, err := Unfold(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 6 || u.M() != 6 {
		t.Fatalf("unfolded: %d nodes %d edges, want 6/6", u.N(), u.M())
	}
	if _, ok := u.Lookup("a@0"); !ok {
		t.Fatal("copy naming broken")
	}
	// Edge (c,a,2) unfolds to c@0 -> a@0 with 1 delay and c@1 -> a@1 with
	// 1 delay (since (0+2)%2 = 0, (0+2)/2 = 1).
	found := 0
	for _, e := range u.Edges() {
		if u.Node(e.From).Name == "c@0" && u.Node(e.To).Name == "a@0" && e.Delays == 1 {
			found++
		}
		if u.Node(e.From).Name == "c@1" && u.Node(e.To).Name == "a@1" && e.Delays == 1 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("feedback edges misplaced (%d matches):\n%s", found, u.String())
	}
}

func TestUnfoldRejectsBadInput(t *testing.T) {
	if _, err := Unfold(loop(), 0); err == nil {
		t.Error("factor 0 accepted")
	}
	bad := dfg.New()
	a := bad.MustAddNode("a", "")
	b := bad.MustAddNode("b", "")
	bad.MustAddEdge(a, b, 0)
	bad.MustAddEdge(b, a, 0)
	if _, err := Unfold(bad, 2); err == nil {
		t.Error("zero-delay cycle accepted")
	}
}

func TestUnfoldPreservesTotalDelaysAndScalesNodes(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.RandomDAG(rng, 2+rng.Intn(8), 0.3)
		// Sprinkle feedback delays.
		for i := 0; i < 2; i++ {
			g.MustAddEdge(dfg.NodeID(rng.Intn(g.N())), dfg.NodeID(rng.Intn(g.N())), 1+rng.Intn(3))
		}
		f := 1 + rng.Intn(4)
		u, err := Unfold(g, f)
		if err != nil {
			return false
		}
		if u.N() != g.N()*f || u.M() != g.M()*f {
			return false
		}
		// Sum over copies of an edge's delays equals the original delays:
		// sum_i floor((i+d)/f) = d for i in 0..f-1.
		sum := func(gr *dfg.Graph) int {
			s := 0
			for _, e := range gr.Edges() {
				s += e.Delays
			}
			return s
		}
		return sum(u) == sum(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnfoldIdentityAtFactorOne(t *testing.T) {
	g := loop()
	u, err := Unfold(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != g.N() || u.M() != g.M() {
		t.Fatalf("factor-1 unfold changed the graph: %s", u.String())
	}
}

func TestLiftTableAndFoldAssignment(t *testing.T) {
	tab := fu.NewTable(2, 2)
	tab.MustSet(0, []int{1, 2}, []int64{5, 1})
	tab.MustSet(1, []int{2, 3}, []int64{6, 2})
	lifted := LiftTable(tab, 3)
	if lifted.N() != 6 {
		t.Fatalf("lifted table covers %d nodes", lifted.N())
	}
	for i := 0; i < 3; i++ {
		if lifted.Time[0*3+i][1] != 2 || lifted.Cost[1*3+i][0] != 6 {
			t.Fatalf("lifted rows wrong at copy %d", i)
		}
	}
	a := hap.Assignment{0, 1, 0, 1, 1, 0}
	folded := FoldAssignment(a, 2, 3)
	if folded[0][1] != 1 || folded[1][2] != 0 {
		t.Fatalf("folded = %v", folded)
	}
}

func TestIterationBound(t *testing.T) {
	g := loop() // one cycle: time 3, delays 2 -> bound 3/2.
	num, den, err := IterationBound(g, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(num)/float64(den) != 1.5 {
		t.Fatalf("bound = %d/%d = %v, want 1.5", num, den, float64(num)/float64(den))
	}
}

func TestIterationBoundAcyclic(t *testing.T) {
	g := dfg.Chain(3)
	num, den, err := IterationBound(g, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if num != 0 || den != 1 {
		t.Fatalf("acyclic bound = %d/%d, want 0/1", num, den)
	}
	if _, _, err := IterationBound(g, []int{1}); err == nil {
		t.Fatal("short times accepted")
	}
}

func TestIterationBoundTwoCycles(t *testing.T) {
	// Cycle 1: a->b->a, 1 delay, time 2+3=5 -> ratio 5.
	// Cycle 2: c->c self loop 2 delays, time 4 -> ratio 2. Max is 5.
	g := dfg.New()
	a := g.MustAddNode("a", "")
	b := g.MustAddNode("b", "")
	c := g.MustAddNode("c", "")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 1)
	g.MustAddEdge(c, c, 2)
	num, den, err := IterationBound(g, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if float64(num)/float64(den) != 5 {
		t.Fatalf("bound = %d/%d, want 5", num, den)
	}
}

// TestUnfoldingApproachesIterationBound is the headline property of [6]:
// the per-iteration critical path of the f-unfolded graph divided by f
// converges toward the iteration bound.
func TestUnfoldingApproachesIterationBound(t *testing.T) {
	g := loop()
	times := []int{1, 1, 1}
	num, den, err := IterationBound(g, times)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(num) / float64(den) // 1.5
	perIter := func(f int) float64 {
		u, err := Unfold(g, f)
		if err != nil {
			t.Fatal(err)
		}
		tu := make([]int, u.N())
		for i := range tu {
			tu[i] = 1
		}
		length, _, err := u.LongestPath(tu)
		if err != nil {
			t.Fatal(err)
		}
		return float64(length) / float64(f)
	}
	p1 := perIter(1) // 3/1 = 3
	p2 := perIter(2) // expect 4/2 = 2
	p4 := perIter(4)
	if !(p1 >= p2 && p2 >= p4) {
		t.Fatalf("per-iteration lengths not improving: %v %v %v", p1, p2, p4)
	}
	if p4 < bound-1e-9 {
		t.Fatalf("beat the iteration bound: %v < %v", p4, bound)
	}
	if p4 > bound+0.6 {
		t.Fatalf("factor-4 unfolding still far from bound: %v vs %v", p4, bound)
	}
}
